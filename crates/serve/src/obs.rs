//! The telemetry query surface: one serializer for every answer path.
//!
//! `metrics` and `trace` are **server-level** queries like `sessions` —
//! they read the process-global [`dna_obs`] registry and span ring, not
//! any one session's engine state, so every transport answers them
//! without an engine-thread round trip: the single-stream loop
//! ([`crate::serve_stream`]), the broker ([`crate::run_broker`]), the
//! router, and the TCP connection threads ([`crate::net`]) all call
//! [`obs_reply`] / [`obs_reply_for`] before normal dispatch. Because
//! every path funnels through this one module, the engine path and the
//! view path produce byte-identical artifacts for the same registry
//! state.
//!
//! A `session` line on the query narrows the scrape to that session's
//! labeled series (process-wide series are always kept) — an unknown
//! name simply yields no labeled series, never an error, matching
//! Prometheus-style scrape semantics where absence is data.

use dna_io::{
    write_health, write_history, write_metrics, write_spans, Artifact, HealthReport, HealthStatus,
    HistogramRow, HistoryReport, HistorySample, MetricsReport, Query, QueryKind, SeriesRow,
    SessionHealth, SpanReport, SpanRow,
};
use dna_obs::{EpochSpan, MetricsSnapshot, Sample, BUCKET_BOUNDS_US};

/// Serializes the process-global registry, span ring, history ring or
/// health classification as the reply to an already-parsed telemetry
/// query; `None` for every other kind (the caller dispatches those
/// normally).
pub fn obs_reply_for(q: &Query) -> Option<String> {
    match &q.kind {
        QueryKind::Metrics => {
            let snap = dna_obs::global().snapshot(q.session.as_deref());
            Some(write_metrics(&metrics_report(&snap)))
        }
        QueryKind::TraceSpans { last } => {
            let spans = dna_obs::spans().snapshot(q.session.as_deref(), *last);
            Some(write_spans(&spans_report(&spans)))
        }
        QueryKind::History { last } => {
            let samples = dna_obs::history().snapshot(q.session.as_deref(), *last);
            Some(write_history(&history_report(&samples)))
        }
        // Health classifies the whole process — a `session` line on the
        // query is ignored rather than narrowing, so every client sees
        // the same picture.
        QueryKind::Health => {
            let snap = dna_obs::global().snapshot(None);
            let report = health_report(&snap, dna_obs::uptime_ms(), &Thresholds::from_env());
            Some(write_health(&report))
        }
        _ => None,
    }
}

/// Sniffs raw artifact text and answers it if it is a telemetry query;
/// `None` otherwise (including malformed text — the normal dispatch
/// path owns every error story, so wire behavior is unchanged for
/// anything this module does not answer).
pub fn obs_reply(text: &str) -> Option<String> {
    let (_, kind) = dna_io::sniff(text).ok()?;
    if kind != Artifact::Query {
        return None;
    }
    obs_reply_for(&dna_io::parse_query(text).ok()?)
}

/// Records one answered query into the query plane: a
/// `query_latency_us` observation labeled with the answer path
/// (`tcp`/`broker`/`pipe` in the scope slot) plus a [`dna_obs::QuerySpan`]
/// in the slow-query ring. Takes the raw artifact text — non-queries
/// (and unparseable text) no-op, so transports can call it
/// unconditionally after answering.
pub(crate) fn record_query_span(transport: &'static str, text: &str, elapsed: std::time::Duration) {
    let Ok((_, kind)) = dna_io::sniff(text) else {
        return;
    };
    if kind != Artifact::Query {
        return;
    }
    let Ok(q) = dna_io::parse_query(text) else {
        return;
    };
    let total_ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
    dna_obs::global()
        .histogram_for("query_latency_us", transport)
        .observe_ns(total_ns);
    dna_obs::query_spans().record(dna_obs::QuerySpan {
        transport,
        session: q.session,
        kind: q.kind.name(),
        total_ns,
    });
}

/// Converts a registry scrape into the canonical wire report,
/// extracting the p50/p95/p99 summary from each histogram's buckets.
pub fn metrics_report(snap: &MetricsSnapshot) -> MetricsReport {
    let series = |s: &dna_obs::SeriesValue| SeriesRow {
        name: s.name.clone(),
        session: s.session.clone(),
        value: s.value,
    };
    MetricsReport {
        counters: snap.counters.iter().map(series).collect(),
        gauges: snap.gauges.iter().map(series).collect(),
        histograms: snap
            .histograms
            .iter()
            .map(|h| {
                let s = &h.snapshot;
                let mut buckets: Vec<(Option<u64>, u64)> = BUCKET_BOUNDS_US
                    .iter()
                    .zip(s.buckets.iter())
                    .map(|(&bound, &n)| (Some(bound), n))
                    .collect();
                buckets.push((None, s.buckets[s.buckets.len() - 1]));
                HistogramRow {
                    name: h.name.clone(),
                    session: h.session.clone(),
                    count: s.count,
                    sum_ns: s.sum_ns,
                    p50_us: s.quantile_us(0.50),
                    p95_us: s.quantile_us(0.95),
                    p99_us: s.quantile_us(0.99),
                    buckets,
                }
            })
            .collect(),
    }
}

/// Converts a history-ring snapshot into the canonical wire report.
/// Histograms are deliberately not sampled by the ring (a full bucket
/// array per series per tick would dwarf the scalar series), so the
/// report carries counters and gauges only.
pub fn history_report(samples: &[Sample]) -> HistoryReport {
    let series = |s: &dna_obs::SeriesValue| SeriesRow {
        name: s.name.clone(),
        session: s.session.clone(),
        value: s.value,
    };
    HistoryReport {
        samples: samples
            .iter()
            .map(|s| HistorySample {
                t_ms: s.t_ms,
                counters: s.counters.iter().map(series).collect(),
                gauges: s.gauges.iter().map(series).collect(),
            })
            .collect(),
    }
}

/// The health-classification knobs, one env var each so operators can
/// tune alarms without redeploying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thresholds {
    /// A session whose engine heartbeat is older than this while work
    /// is queued for it is degraded (`DNA_OBS_STALE_MS`, default 5000).
    pub stale_ms: u64,
    /// Ingest-queue depth above which a session is degraded
    /// (`DNA_OBS_QUEUE_DEPTH_WARN`, default 64).
    pub queue_depth_warn: u64,
    /// Enqueued-but-unapplied epoch count above which a session is
    /// degraded (`DNA_OBS_EPOCHS_BEHIND_WARN`, default 256).
    pub epochs_behind_warn: u64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            stale_ms: 5_000,
            queue_depth_warn: 64,
            epochs_behind_warn: 256,
        }
    }
}

impl Thresholds {
    /// The defaults overridden by any parseable `DNA_OBS_*` env vars
    /// (unset or malformed values keep the default).
    pub fn from_env() -> Self {
        let var = |name: &str, default: u64| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        };
        let d = Thresholds::default();
        Thresholds {
            stale_ms: var("DNA_OBS_STALE_MS", d.stale_ms),
            queue_depth_warn: var("DNA_OBS_QUEUE_DEPTH_WARN", d.queue_depth_warn),
            epochs_behind_warn: var("DNA_OBS_EPOCHS_BEHIND_WARN", d.epochs_behind_warn),
        }
    }
}

/// Classifies the server and every session from one registry scrape —
/// a pure function of `(snapshot, now, thresholds)`, so the answer is
/// the same on every transport and trivially testable.
///
/// A session exists for health purposes iff its `engine_heartbeat_ms`
/// gauge is registered (accounting series are torn down with the
/// engine thread, so retired sessions drop off the report). Rules, in
/// precedence order:
///
/// * `session_failed` set → **failed**, reason `panic`;
/// * heartbeat older than [`Thresholds::stale_ms`] *while the ingest
///   queue is non-empty* → **degraded**, reason `stale-heartbeat` (an
///   idle engine has no reason to beat, so an old heartbeat alone is
///   not a symptom);
/// * queue depth over [`Thresholds::queue_depth_warn`] → **degraded**,
///   reason `queue-depth`;
/// * `epochs_behind` over [`Thresholds::epochs_behind_warn`] →
///   **degraded**, reason `epochs-behind`.
///
/// The server is degraded iff some session is degraded. A **failed**
/// session does *not* degrade the server: the panic fence's whole job
/// is containment, and health reports that containment worked.
pub fn health_report(snap: &MetricsSnapshot, now_ms: u64, t: &Thresholds) -> HealthReport {
    let gauge = |name: &str, session: &str| {
        snap.gauges
            .iter()
            .find(|g| g.name == name && g.session.as_deref() == Some(session))
            .map_or(0, |g| g.value)
    };
    // Gauges arrive (name, session)-sorted, so iterating one gauge name
    // yields the session rows already name-sorted — canonical for free.
    let mut sessions = Vec::new();
    for g in &snap.gauges {
        if g.name != "engine_heartbeat_ms" {
            continue;
        }
        let Some(name) = g.session.clone() else {
            continue;
        };
        let depth = gauge("ingest_queue_depth", &name);
        let (status, reason) = if gauge("session_failed", &name) != 0 {
            (HealthStatus::Failed, Some("panic"))
        } else if depth > 0 && now_ms.saturating_sub(g.value) > t.stale_ms {
            (HealthStatus::Degraded, Some("stale-heartbeat"))
        } else if depth > t.queue_depth_warn {
            (HealthStatus::Degraded, Some("queue-depth"))
        } else if gauge("epochs_behind", &name) > t.epochs_behind_warn {
            (HealthStatus::Degraded, Some("epochs-behind"))
        } else {
            (HealthStatus::Ok, None)
        };
        sessions.push(SessionHealth {
            name,
            status,
            reason: reason.map(str::to_string),
        });
    }
    let server = if sessions.iter().any(|s| s.status == HealthStatus::Degraded) {
        HealthStatus::Degraded
    } else {
        HealthStatus::Ok
    };
    HealthReport { server, sessions }
}

/// Converts a span-ring snapshot into the canonical wire report.
pub fn spans_report(spans: &[EpochSpan]) -> SpanReport {
    SpanReport {
        spans: spans
            .iter()
            .map(|s| SpanRow {
                session: s.session.clone(),
                epoch: s.epoch,
                parse_ns: s.parse_ns,
                cp_ns: s.cp_ns,
                dp_ns: s.dp_ns,
                publish_ns: s.publish_ns,
                total_ns: s.total_ns,
                changes: s.changes,
                flows: s.flows,
                label: s.label.clone(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_obs::Registry;
    use std::time::Duration;

    #[test]
    fn registry_scrape_serializes_canonically() {
        let r = Registry::new();
        r.counter_for("epochs_applied", "a").add(4);
        r.counter("tcp_connections").inc();
        r.gauge_for("view_served", "a").set(2);
        r.histogram_for("epoch_apply_us", "a")
            .observe(Duration::from_micros(700));
        let report = metrics_report(&r.snapshot(None));
        let text = write_metrics(&report);
        let back = dna_io::parse_metrics(&text).expect("round-trips");
        assert_eq!(back, report);
        assert_eq!(write_metrics(&back), text, "canonical");
        let h = &report.histograms[0];
        assert_eq!(h.count, 1);
        assert_eq!((h.p50_us, h.p95_us, h.p99_us), (1_000, 1_000, 1_000));
        assert_eq!(h.buckets.len(), dna_obs::BUCKETS);
        assert_eq!(h.buckets.last().unwrap().0, None, "overflow bucket last");
    }

    #[test]
    fn spans_convert_field_for_field() {
        let spans = vec![EpochSpan {
            session: "a".into(),
            epoch: 3,
            label: Some("link-failure".into()),
            parse_ns: 10,
            cp_ns: 20,
            dp_ns: 30,
            publish_ns: 40,
            total_ns: 100,
            changes: 2,
            flows: 5,
        }];
        let report = spans_report(&spans);
        let text = write_spans(&report);
        assert_eq!(dna_io::parse_spans(&text).unwrap(), report);
        assert_eq!(report.spans[0].epoch, 3);
        assert_eq!(report.spans[0].label.as_deref(), Some("link-failure"));
    }

    #[test]
    fn history_ring_serializes_canonically() {
        let r = Registry::new();
        let ring = dna_obs::TimeSeries::new(8);
        r.counter_for("epochs_applied", "a").add(3);
        r.gauge_for("ingest_queue_depth", "a").set(1);
        ring.record(100, &r.snapshot(None));
        r.counter_for("epochs_applied", "a").add(2);
        ring.record(200, &r.snapshot(None));
        let report = history_report(&ring.snapshot(None, None));
        let text = write_history(&report);
        let back = dna_io::parse_history(&text).expect("round-trips");
        assert_eq!(back, report);
        assert_eq!(write_history(&back), text, "canonical");
        assert_eq!(report.samples.len(), 2);
        assert_eq!((report.samples[0].t_ms, report.samples[1].t_ms), (100, 200));
        assert_eq!(report.samples[1].counters[0].value, 5);
    }

    /// One registry walked through every classification: ok, each
    /// degraded reason in precedence order, failed, and the
    /// idle-heartbeat exemption.
    #[test]
    fn health_classification_rules() {
        let t = Thresholds::default();
        let r = Registry::new();
        let at = |r: &Registry, now: u64| health_report(&r.snapshot(None), now, &t);

        // No heartbeat gauge yet: no sessions, server ok.
        let empty = at(&r, 0);
        assert_eq!(empty.server, HealthStatus::Ok);
        assert!(empty.sessions.is_empty());

        let acct = dna_obs::SessionAccounting::register(&r, "a");
        acct.heartbeat_ms.set(1_000);
        let ok = at(&r, 2_000);
        assert_eq!(ok.server, HealthStatus::Ok);
        assert_eq!(ok.sessions.len(), 1);
        assert_eq!(ok.sessions[0].name, "a");
        assert_eq!(ok.sessions[0].status, HealthStatus::Ok);
        assert_eq!(ok.sessions[0].reason, None);

        // A stale heartbeat with an empty queue is idleness, not a
        // symptom.
        let idle = at(&r, 100_000);
        assert_eq!(idle.sessions[0].status, HealthStatus::Ok);

        // The same staleness with work queued means a wedged engine.
        acct.queue_depth.set(1);
        let stale = at(&r, 100_000);
        assert_eq!(stale.server, HealthStatus::Degraded);
        assert_eq!(stale.sessions[0].status, HealthStatus::Degraded);
        assert_eq!(stale.sessions[0].reason.as_deref(), Some("stale-heartbeat"));

        // Fresh heartbeat, deep queue.
        acct.heartbeat_ms.set(99_900);
        acct.queue_depth.set(t.queue_depth_warn + 1);
        let deep = at(&r, 100_000);
        assert_eq!(deep.sessions[0].reason.as_deref(), Some("queue-depth"));

        // Shallow queue, but epochs piling up.
        acct.queue_depth.set(1);
        acct.epochs_behind.set(t.epochs_behind_warn + 1);
        let behind = at(&r, 100_000);
        assert_eq!(behind.sessions[0].reason.as_deref(), Some("epochs-behind"));

        // A panic fence outranks everything — and does NOT degrade the
        // server: containment working is the healthy outcome.
        acct.failed.set(1);
        let failed = at(&r, 100_000);
        assert_eq!(failed.sessions[0].status, HealthStatus::Failed);
        assert_eq!(failed.sessions[0].reason.as_deref(), Some("panic"));
        assert_eq!(failed.server, HealthStatus::Ok);

        // Retiring the accounting drops the session from the report.
        acct.retire(&r);
        assert!(at(&r, 100_000).sessions.is_empty());
    }

    #[test]
    fn health_report_is_canonical_and_name_sorted() {
        let r = Registry::new();
        let b = dna_obs::SessionAccounting::register(&r, "b");
        let a = dna_obs::SessionAccounting::register(&r, "a");
        b.failed.set(1);
        a.beat();
        let report = health_report(
            &r.snapshot(None),
            dna_obs::uptime_ms(),
            &Thresholds::default(),
        );
        assert_eq!(
            report
                .sessions
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>(),
            ["a", "b"]
        );
        let text = write_health(&report);
        let back = dna_io::parse_health(&text).expect("round-trips");
        assert_eq!(back, report);
        assert_eq!(write_health(&back), text, "canonical");
    }

    #[test]
    fn health_and_history_answered_at_the_transport() {
        let health = dna_io::write_query(&Query {
            session: None,
            kind: QueryKind::Health,
        });
        let reply = obs_reply(&health).expect("telemetry query answered");
        assert!(dna_io::parse_health(&reply).is_ok(), "{reply}");
        let history = dna_io::write_query(&Query {
            session: None,
            kind: QueryKind::History { last: Some(4) },
        });
        let reply = obs_reply(&history).expect("telemetry query answered");
        assert!(dna_io::parse_history(&reply).is_ok(), "{reply}");
    }

    #[test]
    fn non_telemetry_artifacts_pass_through() {
        assert!(obs_reply("garbage").is_none());
        assert!(obs_reply("dna-io v1 trace\nend\n").is_none());
        let stats = dna_io::write_query(&Query {
            session: None,
            kind: QueryKind::Stats,
        });
        assert!(obs_reply(&stats).is_none());
        let metrics = dna_io::write_query(&Query {
            session: None,
            kind: QueryKind::Metrics,
        });
        let reply = obs_reply(&metrics).expect("telemetry query answered");
        assert!(dna_io::parse_metrics(&reply).is_ok(), "{reply}");
    }
}
