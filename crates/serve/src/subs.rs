//! Standing queries: incrementally-maintained subscriptions and the
//! notify fan-out hub.
//!
//! A `subscribe …` query (wire grammar v5, see FORMAT.md) registers a
//! **materialized view** on its session: the question is resolved and
//! answered once at subscribe time, and from then on every applied
//! commit re-evaluates it *from the commit's own diff* — a commit whose
//! [`dna_io::EpochDiff`] does not intersect the subscription's support
//! produces zero work and zero bytes. When the answer changes, the
//! session appends one [`dna_io::NotifyEvent`] per commit to the
//! subscription's bounded poll queue and — when a [`NotifyHub`] is
//! attached (the TCP front door) — publishes a rendered `notify`
//! artifact to every watching connection.
//!
//! Delivery never blocks the engine: both the per-subscription poll
//! queue and each watcher's push queue are bounded, dropping the
//! *oldest* events on overflow and recording the gap. The next drain
//! then leads with a `resync` event so subscribers know to re-establish
//! state by polling. Because evaluation compares canonical answer sets
//! and events serialize canonically, a pushed stream and a
//! poll-after-every-epoch drain of the same subscription are
//! byte-identical (pinned by `tests/subs_equivalence.rs`).

use data_plane::Outcome;
use dna_io::{write_notify, Notify, NotifyEvent};
use net_model::Flow;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Events retained per subscription for the `notifications <id>` poll.
/// Oldest events beyond the cap are dropped and surfaced as a `resync`.
pub(crate) const POLL_QUEUE_CAP: usize = 256;

/// Rendered artifacts queued per (watcher, subscription) on the push
/// path. A slow TCP consumer overflows its own queue; the engine and
/// every other consumer are unaffected.
pub(crate) const WATCH_QUEUE_CAP: usize = 64;

/// What a subscription watches, with its resolution (device existence,
/// destination address) and last answer fixed at subscribe time.
pub(crate) enum SubKind {
    /// `subscribe reach` / `subscribe reach-pair`: notify when the
    /// outcome set of (src, flow) changes.
    Reach {
        /// Source device (validated at subscribe time).
        src: String,
        /// The concrete flow (reach-pair destinations resolve to their
        /// canonical TCP/80 flow once, at subscribe time).
        flow: Flow,
        /// The last answer delivered (or the subscribe-time baseline).
        last: BTreeSet<Outcome>,
    },
    /// `subscribe blast`: notify when a commit's diff contains flow
    /// changes sourced at the device.
    Blast {
        /// The watched source device.
        device: String,
    },
    /// `subscribe invariant …`: notify when the underlying outcome set
    /// changes, carrying the re-derived verdict.
    Invariant {
        /// Which invariant the verdict is derived under.
        check: InvariantCheck,
        /// Source device of the watched flow.
        src: String,
        /// The concrete flow under the invariant.
        flow: Flow,
        /// The last outcome set the verdict was derived from.
        last: BTreeSet<Outcome>,
    },
}

/// The verdict rule of an invariant subscription.
pub(crate) enum InvariantCheck {
    /// Violated iff the flow is delivered to the named device.
    NeverReach {
        /// The forbidden destination device.
        dst: String,
    },
    /// Violated iff any outcome is a blackhole.
    NoBlackhole,
}

impl InvariantCheck {
    /// Derives the verdict from an outcome set.
    pub(crate) fn holds(&self, outcomes: &BTreeSet<Outcome>) -> bool {
        match self {
            InvariantCheck::NeverReach { dst } => !outcomes
                .iter()
                .any(|o| matches!(o, Outcome::Delivered(d) if d == dst)),
            InvariantCheck::NoBlackhole => {
                !outcomes.iter().any(|o| matches!(o, Outcome::Blackhole(_)))
            }
        }
    }
}

/// One live subscription: its materialized view plus the bounded queue
/// the `notifications <id>` poll drains.
pub(crate) struct Subscription {
    pub(crate) kind: SubKind,
    pending: VecDeque<NotifyEvent>,
    /// Events dropped from `pending` since the last drain.
    dropped: u64,
    /// Commit index of the newest dropped event.
    drop_epoch: u64,
}

impl Subscription {
    fn new(kind: SubKind) -> Self {
        Subscription {
            kind,
            pending: VecDeque::new(),
            dropped: 0,
            drop_epoch: 0,
        }
    }

    /// Appends one event for the poll path, dropping the oldest pending
    /// event (recording the gap) when the bounded queue is full.
    pub(crate) fn push(&mut self, ev: NotifyEvent) {
        while self.pending.len() >= POLL_QUEUE_CAP {
            if let Some(old) = self.pending.pop_front() {
                self.dropped += 1;
                self.drop_epoch = self.drop_epoch.max(old.epoch());
            }
        }
        self.pending.push_back(ev);
    }

    /// Takes everything pending, led by a `resync` marker when events
    /// were dropped since the previous drain.
    fn drain(&mut self) -> Vec<NotifyEvent> {
        let mut events = Vec::with_capacity(self.pending.len() + 1);
        if self.dropped > 0 {
            events.push(NotifyEvent::Resync {
                epoch: self.drop_epoch,
                dropped: self.dropped,
            });
            self.dropped = 0;
            self.drop_epoch = 0;
        }
        events.extend(self.pending.drain(..));
        events
    }
}

/// The per-session table of standing queries. Lives inside a `Mutex`
/// on the session (subscribe/poll arrive on `&self` query paths while
/// evaluation runs on the ingest path); ids are per-session, starting
/// at 1, and never reused.
#[derive(Default)]
pub(crate) struct SubscriptionRegistry {
    next_id: u64,
    subs: BTreeMap<u64, Subscription>,
}

impl SubscriptionRegistry {
    /// Registers a materialized view, returning its fresh id.
    pub(crate) fn insert(&mut self, kind: SubKind) -> u64 {
        self.next_id += 1;
        self.subs.insert(self.next_id, Subscription::new(kind));
        self.next_id
    }

    /// Removes a subscription; `false` when the id is unknown.
    pub(crate) fn remove(&mut self, id: u64) -> bool {
        self.subs.remove(&id).is_some()
    }

    /// Drains a subscription's pending events; `None` for unknown ids.
    pub(crate) fn drain(&mut self, id: u64) -> Option<Vec<NotifyEvent>> {
        self.subs.get_mut(&id).map(Subscription::drain)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    pub(crate) fn len(&self) -> usize {
        self.subs.len()
    }

    /// Iterates the live subscriptions mutably (commit-tail evaluation
    /// updates each view's `last` answer in place).
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut Subscription)> {
        self.subs.iter_mut().map(|(id, s)| (*id, s))
    }
}

/// Recovers a hub guard even when a previous holder panicked while
/// holding it: every mutation under the lock is queue bookkeeping,
/// valid at each instruction boundary, so poison carries no
/// information — and must never wedge the engine's publish path.
fn lock_hub<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One TCP connection's registration on the hub.
struct Watcher {
    /// Set when the connection goes away; `wait` returns `None` and the
    /// pusher thread exits.
    closed: bool,
    /// Bounded artifact queues, one per watched (session, sub id).
    queues: BTreeMap<(String, u64), WatchQueue>,
}

#[derive(Default)]
struct WatchQueue {
    artifacts: VecDeque<(u64, String)>,
    dropped: u64,
    drop_epoch: u64,
}

/// The push-delivery fan-out between session engine threads and TCP
/// connection threads. Engine threads call [`NotifyHub::publish`] after
/// a commit changed a subscription's answer — a bounded enqueue plus a
/// condvar signal, never a socket write, so a slow consumer can never
/// block ingest. Each subscribed connection runs a pusher thread
/// blocked in [`NotifyHub::wait`], draining its own queues onto its own
/// socket; overflow drops the oldest artifacts and the next drain leads
/// with a `resync` notify for the gapped subscription.
#[derive(Default)]
pub struct NotifyHub {
    inner: Mutex<BTreeMap<u64, Watcher>>,
    next_id: Mutex<u64>,
    ready: Condvar,
}

impl NotifyHub {
    /// An empty hub.
    pub fn new() -> Self {
        NotifyHub::default()
    }

    /// Registers a connection, returning its watcher id.
    pub fn register(&self) -> u64 {
        let mut next = lock_hub(&self.next_id);
        *next += 1;
        let id = *next;
        drop(next);
        lock_hub(&self.inner).insert(
            id,
            Watcher {
                closed: false,
                queues: BTreeMap::new(),
            },
        );
        id
    }

    /// Subscribes a watcher to pushes for (session, subscription id).
    pub fn watch(&self, watcher: u64, session: &str, sub: u64) {
        if let Some(w) = lock_hub(&self.inner).get_mut(&watcher) {
            w.queues.entry((session.to_string(), sub)).or_default();
        }
    }

    /// Removes a connection; its pusher thread (if blocked in
    /// [`NotifyHub::wait`]) wakes and exits.
    pub fn unregister(&self, watcher: u64) {
        if let Some(w) = lock_hub(&self.inner).get_mut(&watcher) {
            w.closed = true;
        }
        self.ready.notify_all();
    }

    /// Whether any watcher is subscribed to (session, sub) — lets the
    /// engine skip rendering artifacts nobody is listening for.
    pub fn wanted(&self, session: &str, sub: u64) -> bool {
        lock_hub(&self.inner)
            .values()
            .any(|w| !w.closed && w.queues.contains_key(&(session.to_string(), sub)))
    }

    /// Enqueues one rendered notify artifact for every watcher of
    /// (session, sub). Bounded: a full watcher queue drops its oldest
    /// artifact and records the gap. Never blocks on I/O.
    pub fn publish(&self, session: &str, sub: u64, epoch: u64, artifact: &str) {
        let key = (session.to_string(), sub);
        let mut inner = lock_hub(&self.inner);
        let mut delivered = false;
        for w in inner.values_mut() {
            if w.closed {
                continue;
            }
            let Some(q) = w.queues.get_mut(&key) else {
                continue;
            };
            while q.artifacts.len() >= WATCH_QUEUE_CAP {
                if let Some((e, _)) = q.artifacts.pop_front() {
                    q.dropped += 1;
                    q.drop_epoch = q.drop_epoch.max(e);
                }
            }
            q.artifacts.push_back((epoch, artifact.to_string()));
            delivered = true;
        }
        drop(inner);
        if delivered {
            self.ready.notify_all();
        }
    }

    /// Blocks until the watcher has artifacts to push (or was closed),
    /// then takes them in epoch order per subscription, prepending a
    /// `resync` notify for any subscription whose queue overflowed.
    /// Returns `None` once the watcher is closed and drained.
    pub fn wait(&self, watcher: u64) -> Option<Vec<String>> {
        let mut inner = lock_hub(&self.inner);
        loop {
            let w = inner.get_mut(&watcher)?;
            let mut out = Vec::new();
            for ((session, sub), q) in w.queues.iter_mut() {
                if q.dropped > 0 {
                    out.push(write_notify(&Notify {
                        subscription: *sub,
                        session: session.clone(),
                        events: vec![NotifyEvent::Resync {
                            epoch: q.drop_epoch,
                            dropped: q.dropped,
                        }],
                    }));
                    q.dropped = 0;
                    q.drop_epoch = 0;
                }
                out.extend(q.artifacts.drain(..).map(|(_, a)| a));
            }
            if !out.is_empty() {
                return Some(out);
            }
            if w.closed {
                inner.remove(&watcher);
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_queue_bounds_and_resyncs() {
        let mut reg = SubscriptionRegistry::default();
        let id = reg.insert(SubKind::Blast { device: "d".into() });
        assert_eq!(id, 1);
        let sub = reg.subs.get_mut(&id).expect("known id");
        for epoch in 0..(POLL_QUEUE_CAP as u64 + 3) {
            sub.push(NotifyEvent::Blast { epoch, flows: 1 });
        }
        let events = reg.drain(id).expect("known id");
        // Overflow dropped the 3 oldest; the drain leads with the gap.
        assert_eq!(events.len(), POLL_QUEUE_CAP + 1);
        assert_eq!(
            events[0],
            NotifyEvent::Resync {
                epoch: 2,
                dropped: 3
            }
        );
        assert_eq!(events[1].epoch(), 3);
        // A second drain is empty (and resync-free).
        assert_eq!(reg.drain(id).expect("known id"), Vec::new());
        assert!(reg.remove(id));
        assert!(!reg.remove(id));
        assert!(reg.drain(id).is_none());
    }

    #[test]
    fn invariant_verdicts() {
        let delivered: BTreeSet<Outcome> = [Outcome::Delivered("b".into())].into_iter().collect();
        let holed: BTreeSet<Outcome> = [Outcome::Blackhole("m".into())].into_iter().collect();
        let never = InvariantCheck::NeverReach { dst: "b".into() };
        assert!(!never.holds(&delivered));
        assert!(never.holds(&holed));
        let nb = InvariantCheck::NoBlackhole;
        assert!(nb.holds(&delivered));
        assert!(!nb.holds(&holed));
        assert!(never.holds(&BTreeSet::new()) && nb.holds(&BTreeSet::new()));
    }

    #[test]
    fn hub_fans_out_bounded_and_unblocks_on_close() {
        let hub = std::sync::Arc::new(NotifyHub::new());
        let w = hub.register();
        hub.watch(w, "s", 1);
        assert!(hub.wanted("s", 1));
        assert!(!hub.wanted("s", 2));
        // Overflow the watch queue: oldest artifacts drop, the drain
        // leads with a synthesized resync notify.
        for epoch in 0..(WATCH_QUEUE_CAP as u64 + 2) {
            hub.publish("s", 1, epoch, &format!("artifact-{epoch}"));
        }
        let batch = hub.wait(w).expect("artifacts pending");
        assert_eq!(batch.len(), WATCH_QUEUE_CAP + 1);
        let resync = dna_io::parse_notify(&batch[0]).expect("resync notify parses");
        assert_eq!(
            resync.events,
            vec![NotifyEvent::Resync {
                epoch: 1,
                dropped: 2
            }]
        );
        assert_eq!(batch[1], "artifact-2");
        // Publishing to an unwatched key delivers nothing.
        hub.publish("s", 2, 0, "ghost");
        hub.publish("other", 1, 0, "ghost");
        // Closing from another thread unblocks the waiter.
        let closer = std::sync::Arc::clone(&hub);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            closer.unregister(w);
        });
        assert_eq!(hub.wait(w), None);
        t.join().unwrap();
        assert!(!hub.wanted("s", 1));
    }
}
