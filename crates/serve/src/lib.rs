//! # dna-serve — long-running differential analysis service
//!
//! The paper's pitch is that differential analysis makes change impact
//! cheap enough to answer *continuously*. This crate is the subsystem
//! that cashes that in: instead of one-shot load→replay→exit runs, a
//! server keeps live [`dna_core::DiffEngine`]s resident across epochs,
//! ingests `dna-io` change traces incrementally from a stream, and
//! answers queries — reachability, blast radius, report ranges, stats —
//! against the evolving state, never re-simulating from scratch on the
//! query path.
//!
//! Layers:
//!
//! * [`session`] — [`Session`] (one live analysis: engine + optional
//!   from-scratch verification shadow + bounded epoch history) and
//!   [`SessionManager`] (named sessions, one per loaded snapshot);
//! * [`server`] — artifact framing, the single-threaded serve loop over
//!   any `BufRead`/`Write` pair (stdio pipes), the broker request type,
//!   a unix-socket front-end, and file-tail ingest ([`follow_trace`]);
//! * [`router`] — one engine thread *per session* behind the broker
//!   seam: parallel session bring-up and concurrent multi-session
//!   ingest with interleaved queries (the engine stays thread-local —
//!   each session's engine lives and dies on its own thread);
//! * [`view`] — the published-snapshot read path: after every applied
//!   epoch a session publishes an immutable [`QueryView`] behind an
//!   atomic version counter, so reader threads answer read-only
//!   queries without ever touching an engine thread;
//! * [`subs`] — standing queries: per-session registries of
//!   materialized subscriptions re-evaluated from each commit's diff,
//!   plus the [`NotifyHub`] that fans pushed `notify` artifacts out to
//!   TCP watchers through bounded, drop-oldest queues (the engine
//!   never blocks on a slow consumer);
//! * [`net`] — the TCP front door: an accept loop whose per-connection
//!   threads answer read-only queries straight from published views,
//!   forward everything else to the engine side, and stream pushed
//!   notifies to subscribed clients (`dna watch`);
//! * [`obs`] — the telemetry query surface: `metrics` / `trace`
//!   queries answered from the process-global [`dna_obs`] registry and
//!   span ring, byte-identically on every transport.
//!
//! The wire protocol is `dna-io`'s `query`/`response` artifacts (see
//! `crates/io/FORMAT.md`); the `dna serve` / `dna query` subcommands in
//! `crates/cli` are thin shells over this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod net;
pub mod obs;
pub mod router;
pub mod server;
pub mod session;
pub mod subs;
pub mod view;

pub use net::{query_tcp, tcp_accept_loop};
pub use obs::{obs_reply, obs_reply_for};
pub use router::{route_stream, Router};
#[cfg(unix)]
pub use server::{accept_loop, query_socket};
pub use server::{
    follow_trace, handle_artifact, pump_stream, pump_stream_as, read_artifact, run_broker,
    serve_stream, subscription_reply, Request, ServeSummary,
};
pub use session::{
    checkpoint_file_name, coalesced_label, resolve_checkpoint_snapshot, Session, SessionConfig,
    SessionManager,
};
pub use subs::NotifyHub;
pub use view::{QueryView, ViewReader, ViewRegistry, ViewSlot};
