//! # dna-serve — long-running differential analysis service
//!
//! The paper's pitch is that differential analysis makes change impact
//! cheap enough to answer *continuously*. This crate is the subsystem
//! that cashes that in: instead of one-shot load→replay→exit runs, a
//! server keeps live [`dna_core::DiffEngine`]s resident across epochs,
//! ingests `dna-io` change traces incrementally from a stream, and
//! answers queries — reachability, blast radius, report ranges, stats —
//! against the evolving state, never re-simulating from scratch on the
//! query path.
//!
//! Layers:
//!
//! * [`session`] — [`Session`] (one live analysis: engine + optional
//!   from-scratch verification shadow + bounded epoch history) and
//!   [`SessionManager`] (named sessions, one per loaded snapshot);
//! * [`server`] — artifact framing and the serve loop over any
//!   `BufRead`/`Write` pair (stdio pipes) plus a unix-socket front-end.
//!
//! The wire protocol is `dna-io`'s `query`/`response` artifacts (see
//! `crates/io/FORMAT.md`); the `dna serve` / `dna query` subcommands in
//! `crates/cli` are thin shells over this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod server;
pub mod session;

#[cfg(unix)]
pub use server::{accept_loop, query_socket};
pub use server::{
    handle_artifact, pump_stream, read_artifact, run_broker, serve_stream, Request, ServeSummary,
};
pub use session::{Session, SessionConfig, SessionManager};
