//! Per-session engine threads behind the broker seam.
//!
//! The dataflow engine is thread-local by design, so PR 3's broker ran
//! *every* session on one engine thread — two sessions could never
//! ingest concurrently. The router keeps the same outside contract
//! (requests are raw artifact text plus a reply channel — see
//! [`crate::server::Request`]) but gives each session its own engine
//! thread: the router thread only parses and routes; session threads
//! own their [`Session`] (engine state never crosses threads) and send
//! serialized responses straight to the requesting client. Two clients
//! ingesting into different sessions therefore run truly in parallel,
//! with queries interleaving against both, while per-session ordering
//! is preserved by each session's command channel. Session bring-up
//! (the expensive initial analysis) also parallelizes: opening N
//! sessions at startup runs N engine initializations concurrently.

use crate::server::{Request, ServeSummary};
use crate::session::{Session, SessionConfig};
use crate::subs::NotifyHub;
use crate::view::{ViewRegistry, ViewSlot};
use dna_io::{
    parse_query, parse_snapshot, parse_trace, write_response, Artifact, Checkpoint, QueryKind,
    Response, SessionInfo,
};
use net_model::Snapshot;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};

/// One command on a session thread's channel. The reply is a
/// serialized response artifact sent directly to the requesting
/// client. Split from the work payload so the session loop always
/// holds the reply sender *outside* the panic fence — whatever the
/// engine does to the payload, the client gets an answer.
struct SessionCmd {
    work: SessionWork,
    reply: mpsc::Sender<String>,
    /// When the router queued this command — the engine thread turns
    /// it into the `ingest_queue_wait_us` histogram at pickup.
    enqueued: std::time::Instant,
    /// Change epochs this command *looks like* it carries (a cheap
    /// line scan of trace text, counted before the real parse). The
    /// router adds it to the `epochs_behind` gauge at enqueue; the
    /// engine thread subtracts the same stored number when the command
    /// finishes, so the gauge is symmetric and leak-free even when the
    /// parse later disagrees (or fails).
    epochs_hint: u64,
}

impl SessionCmd {
    fn new(work: SessionWork, reply: mpsc::Sender<String>) -> Self {
        let epochs_hint = match &work {
            SessionWork::IngestText(text) => count_epoch_lines(text),
            _ => 0,
        };
        SessionCmd {
            work,
            reply,
            enqueued: std::time::Instant::now(),
            epochs_hint,
        }
    }
}

/// Counts the `epoch` lines of raw trace text — the enqueue-side hint
/// behind the `epochs_behind` gauge. A scan, not a parse: routing must
/// stay cheap, and the decrement uses the same stored hint, so an
/// imprecise count can never leak.
fn count_epoch_lines(text: &str) -> u64 {
    text.lines()
        .map(str::trim)
        .filter(|l| *l == "epoch" || l.starts_with("epoch "))
        .count() as u64
}

/// The engine-side payload of one [`SessionCmd`].
enum SessionWork {
    /// (Re)open the session over an already-parsed snapshot (preload).
    Load(Box<Snapshot>),
    /// (Re)open the session by resuming a checkpoint whose snapshot
    /// source is already resolved (`--resume` preload and streamed
    /// checkpoint artifacts).
    Resume(Box<(Checkpoint, Snapshot)>),
    /// Parse raw snapshot artifact text, then (re)open over it. Raw
    /// text so the parse of a large artifact runs on this session's
    /// thread, never stalling the router (and with it other sessions).
    LoadText(String),
    /// Parse raw trace artifact text, then ingest it epoch by epoch.
    IngestText(String),
    /// Answer one query.
    Query(Box<QueryKind>),
    /// Deliberately panic the engine thread — the regression hook for
    /// the panic fence, compiled only into this crate's tests.
    #[cfg(test)]
    Poison,
}

/// What one command answers with: almost always a [`Response`], but
/// standing-query commands reply with pre-serialized `notify` artifacts
/// (see [`Session::subscription_reply`]) that must reach the client
/// byte-exactly.
enum Reply {
    Response(Response),
    Raw(String),
}

/// Locks an info cell even when a previous holder panicked mid-update:
/// the cell is a single `Option` assignment, valid at every
/// instruction boundary, so mutex poison carries no information — and
/// must never turn a `sessions` listing into a second panic.
fn lock_info(info: &Mutex<Option<SessionInfo>>) -> MutexGuard<'_, Option<SessionInfo>> {
    info.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running session thread.
struct SessionThread {
    tx: mpsc::Sender<SessionCmd>,
    /// Info line maintained by the session thread after every command
    /// (`None` until a load succeeded). Lets the router answer a
    /// `sessions` query without blocking behind in-flight engine work.
    info: Arc<Mutex<Option<SessionInfo>>>,
    /// Queue-side accounting handles (shared cells with the engine
    /// thread's own registration): the router marks work queued here,
    /// the session loop marks it picked up and done.
    acct: dna_obs::SessionAccounting,
    join: std::thread::JoinHandle<ServeSummary>,
}

impl SessionThread {
    /// Queues one command, marking it in the ingest-queue accounting;
    /// a send into a dead thread is unwound from the gauges before the
    /// error (carrying the command) is handed back.
    fn send(
        &self,
        work: SessionWork,
        reply: mpsc::Sender<String>,
    ) -> Result<(), mpsc::SendError<SessionCmd>> {
        let cmd = SessionCmd::new(work, reply);
        self.acct.queue_depth.add(1);
        self.acct.epochs_behind.add(cmd.epochs_hint);
        let result = self.tx.send(cmd);
        if let Err(mpsc::SendError(cmd)) = &result {
            self.acct.queue_depth.sub(1);
            self.acct.epochs_behind.sub(cmd.epochs_hint);
        }
        result
    }
}

fn spawn_session(
    name: String,
    config: SessionConfig,
    view: Option<Arc<ViewSlot>>,
    hub: Option<Arc<NotifyHub>>,
) -> SessionThread {
    let (tx, rx) = mpsc::channel::<SessionCmd>();
    let info = Arc::new(Mutex::new(None));
    let shared = Arc::clone(&info);
    let acct = dna_obs::SessionAccounting::register(dna_obs::global(), &name);
    let join = std::thread::spawn(move || session_loop(name, config, rx, &shared, view, hub));
    SessionThread {
        tx,
        info,
        acct,
        join,
    }
}

/// (Re)opens `slot` over a snapshot; a failed open keeps the previous
/// session (mirroring `SessionManager::open` semantics on reload).
fn open_session(
    name: &str,
    config: SessionConfig,
    view: Option<&Arc<ViewSlot>>,
    hub: Option<&Arc<NotifyHub>>,
    slot: &mut Option<Session>,
    snapshot: Snapshot,
) -> Response {
    let devices = snapshot.device_count() as u64;
    let links = snapshot.links.len() as u64;
    match Session::open(name, snapshot, config) {
        Ok(mut s) => {
            if let Some(view) = view {
                s.set_view_slot(Arc::clone(view));
            }
            if let Some(hub) = hub {
                s.set_notify_hub(Arc::clone(hub));
            }
            *slot = Some(s);
            Response::Loaded {
                session: name.to_string(),
                devices,
                links,
            }
        }
        Err(e) => Response::Error(e),
    }
}

/// (Re)opens `slot` by resuming a checkpoint; a failed resume keeps
/// the previous session, mirroring [`open_session`].
fn resume_session(
    config: &SessionConfig,
    view: Option<&Arc<ViewSlot>>,
    hub: Option<&Arc<NotifyHub>>,
    slot: &mut Option<Session>,
    ckpt: &Checkpoint,
    snapshot: Snapshot,
) -> Response {
    let devices = snapshot.device_count() as u64;
    let links = snapshot.links.len() as u64;
    match Session::resume(ckpt, snapshot, config) {
        Ok(mut s) => {
            let session = s.name().to_string();
            if let Some(view) = view {
                s.set_view_slot(Arc::clone(view));
            }
            if let Some(hub) = hub {
                s.set_notify_hub(Arc::clone(hub));
            }
            *slot = Some(s);
            Response::Loaded {
                session,
                devices,
                links,
            }
        }
        Err(e) => Response::Error(e),
    }
}

/// The engine loop of one session: processes its commands in order
/// until the router drops the channel. Counts what it answers (the
/// router counts only what it answers itself); the per-thread summaries
/// are summed at shutdown.
///
/// Every command runs inside a panic fence: if the engine panics, the
/// session is marked **failed** — its state is dropped (half-mutated
/// state must never answer again), its published view is withdrawn,
/// the `sessions` listing carries a `failed` marker — and this loop
/// keeps answering, with errors, so one wedged session never takes
/// the server (or even this session's own clients) down with it. A
/// later snapshot load or checkpoint resume lifts the fence.
fn session_loop(
    name: String,
    config: SessionConfig,
    rx: mpsc::Receiver<SessionCmd>,
    info: &Mutex<Option<SessionInfo>>,
    view: Option<Arc<ViewSlot>>,
    hub: Option<Arc<NotifyHub>>,
) -> ServeSummary {
    let mut session: Option<Session> = None;
    let mut summary = ServeSummary::default();
    let mut failed: Option<String> = None;
    // Engine-side accounting handles: the same shared cells the router
    // bumps at enqueue. Registered while this loop runs, retired with
    // it — the health query's session list is exactly the sessions
    // whose engine loop is alive.
    let registry = dna_obs::global();
    let acct = dna_obs::SessionAccounting::register(registry, &name);
    // Engine-path query latency, labeled by answer path (the scope
    // slot carries the transport, not a session — see `crate::obs`).
    let query_latency = registry.histogram_for("query_latency_us", "broker");
    // A command the coalescing drain pulled off the channel that turned
    // out not to be ingest work: processed on the next iteration, so
    // per-session command order is preserved exactly.
    let mut carry: Option<SessionCmd> = None;
    loop {
        let cmd = match carry.take() {
            Some(c) => c,
            None => match rx.recv() {
                Ok(c) => c,
                Err(_) => break,
            },
        };
        let SessionCmd {
            work,
            reply,
            enqueued,
            epochs_hint,
        } = cmd;
        // One beat per command-loop iteration: a live heartbeat with a
        // non-empty queue is the watchdog's proof the engine is moving.
        acct.beat();
        acct.queue_depth.sub(1);
        acct.queue_wait.observe(enqueued.elapsed());
        if matches!(
            work,
            SessionWork::Load(_) | SessionWork::Resume(_) | SessionWork::LoadText(_)
        ) {
            // A fresh load replaces whatever state the panic ruined.
            failed = None;
            acct.failed.set(0);
        }
        if let Some(reason) = &failed {
            acct.epochs_behind.sub(epochs_hint);
            let response = Response::Error(format!("session {name:?} failed: {reason}"));
            summary.count(&response, 0);
            let _ = reply.send(write_response(&response));
            continue;
        }
        // Backlog epoch coalescing (--coalesce): if more ingest work is
        // already queued behind this command, the queue is deep — drain
        // it and merge the pooled epochs into commits of up to
        // `config.coalesce` epochs each (see `apply_ingest_batch`).
        // Draining stops at the first non-ingest command, carried into
        // the next iteration, so command order is preserved; each
        // drained artifact still gets its own reply. A lone ingest with
        // an empty queue takes the per-epoch path below — coalescing
        // never touches a shallow queue.
        if config.coalesce >= 2 && matches!(work, SessionWork::IngestText(_)) {
            let mut extras: Vec<(String, mpsc::Sender<String>, u64)> = Vec::new();
            // Bounded drain: drained artifacts' replies are withheld
            // until the whole batch commits, so one drain must not
            // swallow an unbounded flood.
            while extras.len() + 1 < 64 {
                match rx.try_recv() {
                    Ok(c) if matches!(c.work, SessionWork::IngestText(_)) => {
                        acct.queue_depth.sub(1);
                        acct.queue_wait.observe(c.enqueued.elapsed());
                        let SessionWork::IngestText(text) = c.work else {
                            unreachable!("matched IngestText above");
                        };
                        extras.push((text, c.reply, c.epochs_hint));
                    }
                    // Pulled but deliberately not processed here: its
                    // pick-up accounting runs when the next iteration
                    // takes it out of the carry slot.
                    Ok(c) => {
                        carry = Some(c);
                        break;
                    }
                    Err(_) => break,
                }
            }
            if !extras.is_empty() {
                let SessionWork::IngestText(text) = work else {
                    unreachable!("matched IngestText above");
                };
                let mut texts = vec![text];
                let mut replies = vec![(reply, epochs_hint)];
                for (text, reply, hint) in extras {
                    texts.push(text);
                    replies.push((reply, hint));
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    apply_ingest_batch(&name, &config, &mut session, &texts)
                }));
                for (_, hint) in &replies {
                    acct.epochs_behind.sub(*hint);
                }
                match outcome {
                    Ok(results) => {
                        *lock_info(info) = session.as_ref().map(Session::info);
                        for ((response, epochs), (reply, _)) in results.into_iter().zip(&replies) {
                            summary.count(&response, epochs);
                            let _ = reply.send(write_response(&response));
                        }
                    }
                    // The same fence as the single-command path below,
                    // except every client in the drained batch gets the
                    // failure answer — none may be left hanging.
                    Err(payload) => {
                        let reason = panic_reason(payload.as_ref());
                        session = None;
                        if let Some(view) = &view {
                            view.clear();
                            registry.counter_for("view_withdrawals", &name).inc();
                        }
                        let mut guard = lock_info(info);
                        let last = guard.take();
                        *guard = Some(SessionInfo {
                            name: name.clone(),
                            epochs: last.as_ref().map_or(0, |i| i.epochs),
                            devices: last.as_ref().map_or(0, |i| i.devices),
                            verify: config.verify,
                            failed: true,
                        });
                        drop(guard);
                        summary.failures += 1;
                        failed = Some(reason.clone());
                        acct.failed.set(1);
                        let response =
                            Response::Error(format!("session {name:?} failed: {reason}"));
                        let text = write_response(&response);
                        for (reply, _) in &replies {
                            summary.count(&response, 0);
                            let _ = reply.send(text.clone());
                        }
                    }
                }
                continue;
            }
        }
        let query_kind = match &work {
            SessionWork::Query(k) => Some(k.name()),
            _ => None,
        };
        let started = std::time::Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            apply(
                &name,
                &config,
                view.as_ref(),
                hub.as_ref(),
                &mut session,
                work,
            )
        }));
        // The enqueue-side hint comes off however the work ended —
        // applied, failed mid-trace, or panicked — so `epochs_behind`
        // can never leak.
        acct.epochs_behind.sub(epochs_hint);
        let (reply_body, epochs) = match outcome {
            Ok(out) => out,
            Err(payload) => {
                let reason = panic_reason(payload.as_ref());
                session = None;
                if let Some(view) = &view {
                    view.clear();
                    registry.counter_for("view_withdrawals", &name).inc();
                }
                // Keep the session listed — operators must see the
                // wreck — but flagged, with the last known counters.
                let mut guard = lock_info(info);
                let last = guard.take();
                *guard = Some(SessionInfo {
                    name: name.clone(),
                    epochs: last.as_ref().map_or(0, |i| i.epochs),
                    devices: last.as_ref().map_or(0, |i| i.devices),
                    verify: config.verify,
                    failed: true,
                });
                drop(guard);
                summary.failures += 1;
                failed = Some(reason.clone());
                // The health query reads the fence off this gauge.
                acct.failed.set(1);
                let response = Response::Error(format!("session {name:?} failed: {reason}"));
                summary.count(&response, 0);
                let _ = reply.send(write_response(&response));
                continue;
            }
        };
        if let Some(kind) = query_kind {
            let total_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            query_latency.observe_ns(total_ns);
            dna_obs::query_spans().record(dna_obs::QuerySpan {
                transport: "broker",
                session: Some(name.clone()),
                kind,
                total_ns,
            });
        }
        // Publish the refreshed info line BEFORE acknowledging: once a
        // client holds our reply, a `sessions` listing must already
        // reflect the command it acknowledges.
        *lock_info(info) = session.as_ref().map(Session::info);
        match reply_body {
            Reply::Response(response) => {
                summary.count(&response, epochs);
                let _ = reply.send(write_response(&response));
            }
            // A notify-artifact reply: counted like the other
            // non-`response` query answers (telemetry).
            Reply::Raw(text) => {
                summary.count_obs();
                let _ = reply.send(text);
            }
        }
    }
    acct.retire(registry);
    summary
}

/// Applies one command payload to the session slot (the code inside
/// the panic fence). Returns the reply plus epochs applied.
fn apply(
    name: &str,
    config: &SessionConfig,
    view: Option<&Arc<ViewSlot>>,
    hub: Option<&Arc<NotifyHub>>,
    session: &mut Option<Session>,
    work: SessionWork,
) -> (Reply, u64) {
    match work {
        SessionWork::Load(snapshot) => (
            Reply::Response(open_session(
                name,
                config.clone(),
                view,
                hub,
                session,
                *snapshot,
            )),
            0,
        ),
        SessionWork::Resume(boxed) => {
            let (ckpt, snapshot) = *boxed;
            (
                Reply::Response(resume_session(config, view, hub, session, &ckpt, snapshot)),
                0,
            )
        }
        SessionWork::LoadText(text) => {
            let response = match parse_snapshot(&text) {
                Ok(snapshot) => open_session(name, config.clone(), view, hub, session, snapshot),
                Err(e) => Response::Error(e.to_string()),
            };
            (Reply::Response(response), 0)
        }
        SessionWork::IngestText(text) => {
            let start = std::time::Instant::now();
            let (response, epochs) = match parse_trace(&text) {
                Err(e) => (Response::Error(e.to_string()), 0),
                Ok(trace) => {
                    fault_check(&trace);
                    match session.as_mut() {
                        None => (
                            Response::Error(format!("session {name:?} has no loaded snapshot")),
                            0,
                        ),
                        Some(s) => {
                            // Hand the parse cost to the session so epoch
                            // lifecycle spans start at the wire.
                            let parse_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                            match s.ingest_trace_timed(&trace, parse_ns) {
                                Ok((epochs, flows)) => (
                                    Response::Ingested {
                                        session: name.to_string(),
                                        epochs: epochs as u64,
                                        flows: flows as u64,
                                        total: s.epochs() as u64,
                                    },
                                    epochs as u64,
                                ),
                                Err((applied, e)) => (Response::Error(e), applied as u64),
                            }
                        }
                    }
                }
            };
            (Reply::Response(response), epochs)
        }
        SessionWork::Query(kind) => {
            let reply = match session.as_ref() {
                None => Reply::Response(Response::Error(format!(
                    "session {name:?} has no loaded snapshot"
                ))),
                // Standing-query commands answer with notify artifacts;
                // everything else stays a `response`.
                Some(s) => match s.subscription_reply(&kind) {
                    Some(text) => Reply::Raw(text),
                    None => Reply::Response(s.answer(&kind)),
                },
            };
            (reply, 0)
        }
        #[cfg(test)]
        SessionWork::Poison => panic!("deliberately poisoned (test hook)"),
    }
}

/// Applies a drained backlog of ingest artifacts with epoch coalescing
/// (the code inside the panic fence for the batched path). Every
/// artifact is parsed, then the epochs of all of them are pooled in
/// arrival order and merged into commits of up to `config.coalesce`
/// epochs each ([`Session::ingest_coalesced`]); the final engine state
/// is identical to ingesting them one by one. Returns one
/// `(response, epochs applied)` pair per artifact, in artifact order.
///
/// Error semantics mirror the sequential path per artifact: a failing
/// epoch skips the rest of **its** artifact (stream semantics) while
/// other artifacts' epochs continue, and its error reply counts the
/// artifact's earlier applied epochs. A merged commit is atomic, so on
/// failure it falls back to per-epoch ingest to recover exactly those
/// semantics. Replies report the session's epoch total at drain
/// completion (commit granularity — the N intermediate totals never
/// exist under coalescing).
fn apply_ingest_batch(
    name: &str,
    config: &SessionConfig,
    session: &mut Option<Session>,
    texts: &[String],
) -> Vec<(Response, u64)> {
    // Per-artifact accounting, separate from the parsed traces so the
    // chunk loop can hold epoch borrows while it updates counters.
    #[derive(Default, Clone)]
    struct Acc {
        applied: usize,
        flows: usize,
        error: Option<String>,
    }
    /// Ingests a chunk per-epoch with sequential stream semantics: a
    /// failing epoch fails its artifact (skipping the artifact's later
    /// epochs) while other artifacts continue.
    fn seq_ingest(
        s: &mut Session,
        chunk: &[(usize, &dna_io::TraceEpoch)],
        parse_share: &[u64],
        acc: &mut [Acc],
    ) {
        for (ai, ep) in chunk {
            if acc[*ai].error.is_some() {
                continue;
            }
            match s.ingest_timed(ep, parse_share[*ai]) {
                Ok(n) => {
                    acc[*ai].applied += 1;
                    acc[*ai].flows += n;
                }
                Err(e) => {
                    acc[*ai].error = Some(format!(
                        "{e} ({} earlier epoch(s) of this trace applied)",
                        acc[*ai].applied
                    ));
                }
            }
        }
    }
    let parsed: Vec<(Result<dna_io::Trace, String>, u64)> = texts
        .iter()
        .map(|text| {
            let start = std::time::Instant::now();
            let trace = parse_trace(text).map_err(|e| e.to_string());
            if let Ok(t) = &trace {
                fault_check(t);
            }
            let parse_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            (trace, parse_ns)
        })
        .collect();
    let Some(s) = session.as_mut() else {
        let msg = format!("session {name:?} has no loaded snapshot");
        return parsed
            .iter()
            .map(|(p, _)| match p {
                Err(e) => (Response::Error(e.clone()), 0),
                Ok(_) => (Response::Error(msg.clone()), 0),
            })
            .collect();
    };
    let mut acc = vec![Acc::default(); parsed.len()];
    // The pooled epoch stream: (artifact, epoch) indices in arrival
    // order, with each artifact's parse cost amortized evenly across
    // its epochs like the sequential path does (`ingest_trace_timed`).
    let mut stream: Vec<(usize, usize)> = Vec::new();
    let mut parse_share = vec![0u64; parsed.len()];
    for (ai, (p, parse_ns)) in parsed.iter().enumerate() {
        if let Ok(t) = p {
            parse_share[ai] = parse_ns / t.epochs.len().max(1) as u64;
            stream.extend((0..t.epochs.len()).map(|ei| (ai, ei)));
        }
    }
    let max = config.coalesce.max(1);
    let mut next = 0;
    while next < stream.len() {
        // Collect the next commit's epochs, skipping artifacts already
        // failed (their remaining epochs are dead under stream
        // semantics).
        let mut chunk: Vec<(usize, &dna_io::TraceEpoch)> = Vec::new();
        while next < stream.len() && chunk.len() < max {
            let (ai, ei) = stream[next];
            next += 1;
            if acc[ai].error.is_some() {
                continue;
            }
            let trace = parsed[ai].0.as_ref().expect("streamed artifacts parsed");
            chunk.push((ai, &trace.epochs[ei]));
        }
        match chunk.as_slice() {
            [] => {}
            [_] => seq_ingest(s, &chunk, &parse_share, &mut acc),
            many => {
                let epochs: Vec<&dna_io::TraceEpoch> = many.iter().map(|(_, ep)| *ep).collect();
                let parse_ns = many.iter().map(|(ai, _)| parse_share[*ai]).sum();
                match s.ingest_coalesced(&epochs, parse_ns) {
                    Ok(flows) => {
                        for (ai, _) in many {
                            acc[*ai].applied += 1;
                        }
                        // The merged commit's flow diffs belong to the
                        // commit, not any single epoch; they are
                        // attributed to the artifact that completed it.
                        let (last, _) = many.last().expect("non-empty chunk");
                        acc[*last].flows += flows;
                    }
                    // Atomic failure: nothing applied. Re-run the chunk
                    // per-epoch so partial-failure semantics (and the
                    // error attribution) match the sequential path.
                    Err(_) => seq_ingest(s, &chunk, &parse_share, &mut acc),
                }
            }
        }
    }
    let total = s.epochs() as u64;
    parsed
        .iter()
        .zip(acc)
        .map(|((p, _), a)| match (p, a.error) {
            (Err(e), _) => (Response::Error(e.clone()), 0),
            (Ok(_), Some(e)) => (Response::Error(e), a.applied as u64),
            (Ok(_), None) => (
                Response::Ingested {
                    session: name.to_string(),
                    epochs: a.applied as u64,
                    flows: a.flows as u64,
                    total,
                },
                a.applied as u64,
            ),
        })
        .collect()
}

/// The fault-injection hook behind `DNA_SERVE_FAULT_LABEL`: routing a
/// trace epoch whose scenario label equals the variable's value panics
/// the engine thread — inside the panic fence, so what CI (and an
/// operator rehearsing an incident) gets is the real failure path:
/// session fenced and `failed` in health, server still serving. Only
/// the router path checks it; the fence lives here, not in the
/// single-threaded transports.
fn fault_check(trace: &dna_io::Trace) {
    let Ok(label) = std::env::var("DNA_SERVE_FAULT_LABEL") else {
        return;
    };
    if !label.is_empty()
        && trace
            .epochs
            .iter()
            .any(|e| e.label.as_deref() == Some(label.as_str()))
    {
        panic!("fault injected: epoch label {label:?} (DNA_SERVE_FAULT_LABEL)");
    }
}

/// A human-readable reason out of a panic payload (`panic!` with a
/// string literal or a formatted message covers effectively all of
/// std and this codebase).
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "engine panicked".to_string()
    }
}

/// The router: one engine thread per session, spawned on demand.
pub struct Router {
    config: SessionConfig,
    sessions: BTreeMap<String, SessionThread>,
    default: Option<String>,
    summary: ServeSummary,
    /// When attached (the TCP front door), every session thread gets a
    /// [`ViewSlot`] from this registry and publishes a read view after
    /// each applied epoch; reader threads resolve slots through the
    /// same registry.
    views: Option<Arc<ViewRegistry>>,
    /// When attached (the TCP front door), every session thread pushes
    /// notify artifacts through this hub to watching connections.
    hub: Option<Arc<NotifyHub>>,
}

impl Router {
    /// An empty router; sessions opened later inherit `config`.
    pub fn new(config: SessionConfig) -> Self {
        Router {
            config,
            sessions: BTreeMap::new(),
            default: None,
            summary: ServeSummary::default(),
            views: None,
            hub: None,
        }
    }

    /// Attaches the view registry shared with reader threads; sessions
    /// spawned from here on publish read views into it.
    pub fn with_views(mut self, views: Arc<ViewRegistry>) -> Self {
        self.views = Some(views);
        self
    }

    /// Attaches the notify hub shared with TCP connection threads;
    /// sessions spawned from here on push standing-query deltas into it.
    pub fn with_notify_hub(mut self, hub: Arc<NotifyHub>) -> Self {
        self.hub = Some(hub);
        self
    }

    /// Opens the named sessions concurrently — one engine thread each,
    /// all running their initial analysis in parallel — and waits for
    /// every bring-up to finish. The first name becomes the default
    /// stream target. On any failure the error is returned and the
    /// router is left without the failed session.
    pub fn preload(&mut self, snapshots: Vec<(String, Snapshot)>) -> Result<Vec<String>, String> {
        let cmds = snapshots
            .into_iter()
            .map(|(name, snapshot)| (name, SessionWork::Load(Box::new(snapshot))))
            .collect::<Vec<_>>();
        self.preload_with(cmds)
    }

    /// [`Router::preload`] for checkpoints: every session resumes on
    /// its own engine thread concurrently — a server hosting N
    /// checkpointed sessions pays max-of-resumes, not sum — and the
    /// call returns once all of them are back. Each checkpoint's
    /// snapshot source must already be resolved (see
    /// [`crate::resolve_checkpoint_snapshot`]).
    pub fn preload_checkpoints(
        &mut self,
        checkpoints: Vec<(Checkpoint, Snapshot)>,
    ) -> Result<Vec<String>, String> {
        let cmds = checkpoints
            .into_iter()
            .map(|(ckpt, snapshot)| {
                let name = ckpt.session.clone();
                (name, SessionWork::Resume(Box::new((ckpt, snapshot))))
            })
            .collect::<Vec<_>>();
        self.preload_with(cmds)
    }

    /// The named session's thread, spawned (with its view slot, when a
    /// registry is attached) if it does not exist yet.
    fn thread_entry(&mut self, name: &str) -> &SessionThread {
        let config = self.config.clone();
        let view = self.views.as_ref().map(|v| v.slot(name));
        let hub = self.hub.clone();
        self.sessions
            .entry(name.to_string())
            .or_insert_with(|| spawn_session(name.to_string(), config, view, hub))
    }

    /// Records the default stream target, mirroring it into the view
    /// registry so readers resolve unaddressed queries the same way
    /// the router does.
    fn set_default(&mut self, name: Option<String>) {
        if let Some(views) = &self.views {
            views.set_default(name.as_deref());
        }
        self.default = name;
    }

    /// Shared preload machinery: route one bring-up command per named
    /// session (spawning engine threads as needed, so every bring-up
    /// runs concurrently), then wait for all of them. On any failure
    /// the error is returned and the failed session is removed.
    fn preload_with(&mut self, cmds: Vec<(String, SessionWork)>) -> Result<Vec<String>, String> {
        let mut pending = Vec::new();
        for (name, work) in cmds {
            let (reply_tx, reply_rx) = mpsc::channel();
            let sent = self.thread_entry(&name).send(work, reply_tx);
            if sent.is_err() {
                // A session loop only exits when its channel closes, so
                // a dead thread here is exceptional — fail the bring-up
                // cleanly rather than panicking the router.
                self.remove(&name);
                return Err(format!("session {name:?}: engine thread is gone"));
            }
            if self.default.is_none() {
                self.set_default(Some(name.clone()));
            }
            pending.push((name, reply_rx));
        }
        let mut loaded = Vec::new();
        for (name, reply_rx) in pending {
            let text = reply_rx
                .recv()
                .map_err(|_| format!("session {name:?}: bring-up thread died"))?;
            match dna_io::parse_response(&text) {
                Ok(Response::Error(e)) => {
                    self.remove(&name);
                    return Err(e);
                }
                Ok(_) => loaded.push(text),
                Err(e) => return Err(format!("session {name:?}: malformed load reply: {e}")),
            }
        }
        Ok(loaded)
    }

    fn remove(&mut self, name: &str) {
        if let Some(t) = self.sessions.remove(name) {
            drop(t.tx);
            if let Ok(s) = t.join.join() {
                self.summary.merge(&s);
            }
        }
        if self.default.as_deref() == Some(name) {
            let next = self.sessions.keys().next().cloned();
            self.set_default(next);
        }
    }

    /// Routes one request. The reply reaches the client from whichever
    /// thread answers; the router never blocks on engine work, and only
    /// sniffs artifact headers — full parsing of snapshot/trace bodies
    /// happens on the owning session's thread. A session name exists
    /// from the moment a load is first routed to it: if that load then
    /// fails, the name keeps answering "no loaded snapshot" errors (and
    /// stays out of the `sessions` listing) until a later load
    /// succeeds.
    fn dispatch(&mut self, req: Request) {
        let stream_session = req.session.as_deref();
        let kind = match dna_io::sniff(&req.text) {
            Ok((_, kind)) => kind,
            Err(e) => return self.answer(&req.reply, Response::Error(e.to_string())),
        };
        match kind {
            Artifact::Snapshot => {
                let name = stream_session
                    .or(self.default.as_deref())
                    .unwrap_or("main")
                    .to_string();
                let sent = self
                    .thread_entry(&name)
                    .send(SessionWork::LoadText(req.text), req.reply);
                if let Err(mpsc::SendError(cmd)) = sent {
                    // The thread is gone; answer from here so the
                    // client is never left hanging on a dead channel.
                    let msg = format!("session {name:?}: engine thread is gone");
                    self.answer(&cmd.reply, Response::Error(msg));
                }
                if self.default.is_none() {
                    self.set_default(Some(name));
                }
            }
            Artifact::Trace => {
                let Some(name) = stream_session.or(self.default.as_deref()) else {
                    return self.answer(&req.reply, Response::Error("no session is open".into()));
                };
                let name = name.to_string();
                match self.sessions.get(&name) {
                    Some(thread) => {
                        let sent = thread.send(SessionWork::IngestText(req.text), req.reply);
                        if let Err(mpsc::SendError(cmd)) = sent {
                            let msg = format!("session {name:?}: engine thread is gone");
                            self.answer(&cmd.reply, Response::Error(msg));
                        }
                    }
                    None => {
                        let msg = format!("unknown session {name:?}");
                        self.answer(&req.reply, Response::Error(msg));
                    }
                }
            }
            // A streamed checkpoint artifact resumes its own named
            // session. Unlike snapshot/trace bodies, the artifact must
            // be parsed *here*: the target session's name lives inside
            // it. Checkpoint loads are rare (startup, recovery), so the
            // routing stall is acceptable; the bring-up itself still
            // runs on the session's thread.
            Artifact::Checkpoint => match dna_io::parse_checkpoint(&req.text) {
                Ok(ckpt) => match crate::session::resolve_checkpoint_snapshot(&ckpt, None) {
                    Ok(snapshot) => {
                        let name = ckpt.session.clone();
                        let sent = self
                            .thread_entry(&name)
                            .send(SessionWork::Resume(Box::new((ckpt, snapshot))), req.reply);
                        if let Err(mpsc::SendError(cmd)) = sent {
                            let msg = format!("session {name:?}: engine thread is gone");
                            self.answer(&cmd.reply, Response::Error(msg));
                        }
                        if self.default.is_none() {
                            self.set_default(Some(name));
                        }
                    }
                    Err(e) => self.answer(&req.reply, Response::Error(e)),
                },
                Err(e) => self.answer(&req.reply, Response::Error(e.to_string())),
            },
            Artifact::Query => match parse_query(&req.text) {
                Ok(q) => {
                    // Telemetry is process-global: answered on the
                    // router thread, never queued behind engine work.
                    if let Some(reply) = crate::obs::obs_reply_for(&q) {
                        self.summary.count_obs();
                        let _ = req.reply.send(reply);
                        return;
                    }
                    if q.kind == QueryKind::Sessions {
                        let list = self.session_infos();
                        return self.answer(&req.reply, Response::Sessions(list));
                    }
                    let Some(name) = q.session.as_deref().or(self.default.as_deref()) else {
                        return self
                            .answer(&req.reply, Response::Error("no session is open".into()));
                    };
                    let name = name.to_string();
                    match self.sessions.get(&name) {
                        Some(thread) => {
                            let sent = thread.send(SessionWork::Query(Box::new(q.kind)), req.reply);
                            if let Err(mpsc::SendError(cmd)) = sent {
                                let msg = format!("session {name:?}: engine thread is gone");
                                self.answer(&cmd.reply, Response::Error(msg));
                            }
                        }
                        None => {
                            let msg = format!("unknown session {name:?}");
                            self.answer(&req.reply, Response::Error(msg));
                        }
                    }
                }
                Err(e) => self.answer(&req.reply, Response::Error(e.to_string())),
            },
            Artifact::Report
            | Artifact::Response
            | Artifact::Metrics
            | Artifact::Spans
            | Artifact::History
            | Artifact::Health
            | Artifact::Notify => self.answer(
                &req.reply,
                Response::Error(format!("cannot serve a {kind} artifact")),
            ),
        }
    }

    /// Collects every session's info line (name-ordered; sessions whose
    /// load failed are omitted, sessions whose engine *panicked* are
    /// listed with a `failed` marker) from the per-thread caches, so a
    /// `sessions` query never stalls routing behind a session's
    /// in-flight engine work. The answer can trail commands still in a
    /// session's queue — the price of not blocking every other session
    /// behind the slowest one.
    fn session_infos(&self) -> Vec<SessionInfo> {
        self.sessions
            .values()
            .filter_map(|t| lock_info(&t.info).clone())
            .collect()
    }

    /// Answers a request from the router thread itself.
    fn answer(&mut self, reply: &mpsc::Sender<String>, response: Response) {
        self.summary.count(&response, 0);
        let _ = reply.send(write_response(&response));
    }

    /// Runs the routing loop until every request sender is dropped,
    /// then drains the session threads and returns the summed summary.
    pub fn run(mut self, requests: mpsc::Receiver<Request>) -> ServeSummary {
        for req in requests {
            self.dispatch(req);
        }
        let mut summary = self.summary;
        for (_, thread) in std::mem::take(&mut self.sessions) {
            drop(thread.tx);
            if let Ok(s) = thread.join.join() {
                summary.merge(&s);
            }
        }
        summary
    }
}

/// Runs a per-session-threaded serve loop over one artifact stream —
/// the threaded sibling of [`crate::server::serve_stream`], used when a
/// follower or socket pump needs to coexist with the stream.
pub fn route_stream(
    router: Router,
    input: &mut impl std::io::BufRead,
    output: &mut impl std::io::Write,
) -> std::io::Result<ServeSummary> {
    let (tx, rx) = mpsc::channel();
    let summary_thread = std::thread::spawn(move || router.run(rx));
    crate::server::pump_stream(&tx, input, output)?;
    drop(tx);
    // Session panics are fenced inside their own loops; the router
    // thread itself panicking is a bug, but it must surface as an I/O
    // error to the caller, not a second panic that unwinds the server.
    summary_thread
        .join()
        .map_err(|_| std::io::Error::other("router thread panicked"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{pump_stream, read_artifact};
    use dna_io::{parse_response, write_query, write_snapshot, write_trace, Query};
    use std::io::Cursor;
    use topo_gen::{fat_tree, Routing, ScenarioGen, ScenarioKind};

    fn ft4() -> Snapshot {
        fat_tree(4, Routing::Ebgp).snapshot
    }

    #[test]
    fn router_preloads_sessions_in_parallel_and_routes_queries() {
        let mut router = Router::new(SessionConfig::default());
        let loaded = router
            .preload(vec![
                ("a".into(), ft4()),
                ("b".into(), fat_tree(4, Routing::Ospf).snapshot),
            ])
            .expect("both sessions open");
        assert_eq!(loaded.len(), 2);
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || router.run(rx));
        let stream = format!(
            "{}{}{}",
            write_query(&Query {
                session: None,
                kind: QueryKind::Sessions,
            }),
            write_query(&Query {
                session: Some("b".into()),
                kind: QueryKind::Stats,
            }),
            write_query(&Query {
                session: Some("ghost".into()),
                kind: QueryKind::Stats,
            }),
        );
        let mut out = Vec::new();
        pump_stream(&tx, &mut Cursor::new(stream.into_bytes()), &mut out).unwrap();
        drop(tx);
        let summary = handle.join().unwrap();
        assert_eq!(summary.artifacts, 3 + 2); // 2 loads + 3 queries
        assert_eq!(summary.queries, 2); // sessions + stats (loads and the error are not queries)
        assert_eq!(summary.errors, 1);
        let out = String::from_utf8(out).unwrap();
        let mut cursor = Cursor::new(out.into_bytes());
        match parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap() {
            Response::Sessions(list) => {
                assert_eq!(
                    list.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
                    vec!["a", "b"]
                );
            }
            other => panic!("expected sessions, got {other:?}"),
        }
        match parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap() {
            Response::Stats(s) => assert_eq!(s.session, "b"),
            other => panic!("expected stats, got {other:?}"),
        }
        assert!(matches!(
            parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap(),
            Response::Error(_)
        ));
    }

    #[test]
    fn streamed_snapshot_and_trace_reach_their_session() {
        let snap = ft4();
        let mut gen = ScenarioGen::new(11);
        let cs = gen.generate(&snap, ScenarioKind::LinkFailure).unwrap();
        let trace = dna_io::Trace::from_changesets(vec![cs]);
        let stream = format!(
            "{}{}{}",
            write_snapshot(&snap),
            write_trace(&trace),
            write_query(&Query {
                session: Some("main".into()),
                kind: QueryKind::Stats,
            }),
        );
        let router = Router::new(SessionConfig::default());
        let mut out = Vec::new();
        let summary =
            route_stream(router, &mut Cursor::new(stream.into_bytes()), &mut out).unwrap();
        assert_eq!(summary.artifacts, 3);
        assert_eq!(summary.epochs, 1);
        assert_eq!(summary.errors, 0);
        let out = String::from_utf8(out).unwrap();
        let mut cursor = Cursor::new(out.into_bytes());
        assert!(matches!(
            parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap(),
            Response::Loaded { .. }
        ));
        assert!(matches!(
            parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap(),
            Response::Ingested { epochs: 1, .. }
        ));
        match parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap() {
            Response::Stats(s) => assert_eq!((s.session.as_str(), s.epochs), ("main", 1)),
            other => panic!("expected stats, got {other:?}"),
        }
    }

    /// Regression for the panic fence: before it, a panicking session
    /// thread died with its reply channels and the whole serve loop
    /// came down with `join().expect(...)`. Now the panic is caught on
    /// the session's own thread — the session answers `failed` errors,
    /// the `sessions` listing flags it, the `health` query reports it
    /// **failed** (while the *server* stays ok — containment is the
    /// healthy outcome), every *other* session keeps serving, and a
    /// fresh snapshot load revives the name, flipping health back.
    ///
    /// Session names are unique to this test: the accounting gauges
    /// health reads live in the process-global registry, so names
    /// shared with other tests would race.
    #[test]
    fn panicked_session_is_fenced_and_server_keeps_serving() {
        use dna_io::HealthStatus;
        let fence_health = |text: &str| -> Vec<(String, HealthStatus, Option<String>)> {
            dna_io::parse_health(text)
                .expect("health artifact parses")
                .sessions
                .into_iter()
                .filter(|s| s.name.starts_with("fence-"))
                .map(|s| (s.name, s.status, s.reason))
                .collect()
        };
        let mut router = Router::new(SessionConfig::default());
        router
            .preload(vec![
                ("fence-a".into(), ft4()),
                ("fence-b".into(), fat_tree(4, Routing::Ospf).snapshot),
            ])
            .expect("both sessions open");
        // Deliberately poison session "fence-a"'s engine thread.
        let (ptx, prx) = mpsc::channel();
        router
            .sessions
            .get("fence-a")
            .unwrap()
            .send(SessionWork::Poison, ptx)
            .expect("thread is live");
        match parse_response(&prx.recv().expect("fence answers the poisoned command")).unwrap() {
            Response::Error(msg) => {
                assert!(msg.contains("failed"), "{msg}");
                assert!(msg.contains("deliberately poisoned"), "{msg}");
            }
            other => panic!("expected error, got {other:?}"),
        }
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || router.run(rx));
        let stream = format!(
            "{}{}{}{}",
            write_query(&Query {
                session: None,
                kind: QueryKind::Sessions,
            }),
            write_query(&Query {
                session: Some("fence-a".into()),
                kind: QueryKind::Stats,
            }),
            write_query(&Query {
                session: Some("fence-b".into()),
                kind: QueryKind::Stats,
            }),
            write_query(&Query {
                session: None,
                kind: QueryKind::Health,
            }),
        );
        let mut out = Vec::new();
        pump_stream(&tx, &mut Cursor::new(stream.into_bytes()), &mut out).unwrap();
        // A fresh snapshot load lifts the fence and revives the name.
        let mut out2 = Vec::new();
        let stream2 = format!(
            "{}{}{}",
            write_snapshot(&ft4()),
            write_query(&Query {
                session: Some("fence-a".into()),
                kind: QueryKind::Stats,
            }),
            write_query(&Query {
                session: None,
                kind: QueryKind::Health,
            }),
        );
        crate::server::pump_stream_as(
            &tx,
            Some("fence-a"),
            &mut Cursor::new(stream2.into_bytes()),
            &mut out2,
        )
        .unwrap();
        drop(tx);
        let summary = handle.join().unwrap();
        assert_eq!(summary.failures, 1, "exactly one fenced panic");
        let out = String::from_utf8(out).unwrap();
        let mut cursor = Cursor::new(out.into_bytes());
        match parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap() {
            Response::Sessions(list) => {
                let flags: Vec<(&str, bool)> = list
                    .iter()
                    .filter(|s| s.name.starts_with("fence-"))
                    .map(|s| (s.name.as_str(), s.failed))
                    .collect();
                assert_eq!(flags, vec![("fence-a", true), ("fence-b", false)]);
            }
            other => panic!("expected sessions, got {other:?}"),
        }
        match parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap() {
            Response::Error(msg) => assert!(msg.contains("failed"), "{msg}"),
            other => panic!("failed session must answer errors, got {other:?}"),
        }
        match parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap() {
            Response::Stats(s) => assert_eq!(s.session, "fence-b"),
            other => panic!("healthy session must keep serving, got {other:?}"),
        }
        let health_text = read_artifact(&mut cursor).unwrap().unwrap();
        assert_eq!(
            fence_health(&health_text),
            vec![
                (
                    "fence-a".to_string(),
                    HealthStatus::Failed,
                    Some("panic".to_string())
                ),
                ("fence-b".to_string(), HealthStatus::Ok, None),
            ],
            "health must flip the fenced session to failed"
        );
        let out2 = String::from_utf8(out2).unwrap();
        let mut cursor = Cursor::new(out2.into_bytes());
        assert!(matches!(
            parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap(),
            Response::Loaded { .. }
        ));
        match parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap() {
            Response::Stats(s) => assert_eq!((s.session.as_str(), s.epochs), ("fence-a", 0)),
            other => panic!("revived session must answer, got {other:?}"),
        }
        let revived = read_artifact(&mut cursor).unwrap().unwrap();
        assert_eq!(
            fence_health(&revived),
            vec![
                ("fence-a".to_string(), HealthStatus::Ok, None),
                ("fence-b".to_string(), HealthStatus::Ok, None),
            ],
            "a fresh load must lift the health fence"
        );
    }

    /// Regression for info-mutex poisoning: a reader that panicked
    /// while holding a session's info lock used to make every later
    /// `sessions` query panic in turn (`lock().expect("info mutex")`).
    /// The info cell is poison-proof now, for both the router's reads
    /// and the session thread's writes.
    #[test]
    fn poisoned_info_mutex_neither_kills_listing_nor_session() {
        let mut router = Router::new(SessionConfig::default());
        router
            .preload(vec![("a".into(), ft4())])
            .expect("session opens");
        let info = Arc::clone(&router.sessions.get("a").unwrap().info);
        let _ = std::thread::spawn(move || {
            let _guard = info.lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(
            router.sessions.get("a").unwrap().info.is_poisoned(),
            "test must actually poison the mutex"
        );
        // Router-side read shrugs the poison off.
        let list = router.session_infos();
        assert_eq!(list.len(), 1);
        assert_eq!((list[0].name.as_str(), list[0].failed), ("a", false));
        // Session-side write (after answering a query) does too.
        let (qtx, qrx) = mpsc::channel();
        router
            .sessions
            .get("a")
            .unwrap()
            .send(SessionWork::Query(Box::new(QueryKind::Stats)), qtx)
            .unwrap();
        match parse_response(&qrx.recv().unwrap()).unwrap() {
            Response::Stats(s) => assert_eq!(s.session, "a"),
            other => panic!("expected stats, got {other:?}"),
        }
        assert_eq!(router.session_infos().len(), 1);
    }
}
