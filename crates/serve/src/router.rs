//! Per-session engine threads behind the broker seam.
//!
//! The dataflow engine is thread-local by design, so PR 3's broker ran
//! *every* session on one engine thread — two sessions could never
//! ingest concurrently. The router keeps the same outside contract
//! (requests are raw artifact text plus a reply channel — see
//! [`crate::server::Request`]) but gives each session its own engine
//! thread: the router thread only parses and routes; session threads
//! own their [`Session`] (engine state never crosses threads) and send
//! serialized responses straight to the requesting client. Two clients
//! ingesting into different sessions therefore run truly in parallel,
//! with queries interleaving against both, while per-session ordering
//! is preserved by each session's command channel. Session bring-up
//! (the expensive initial analysis) also parallelizes: opening N
//! sessions at startup runs N engine initializations concurrently.

use crate::server::{Request, ServeSummary};
use crate::session::{Session, SessionConfig};
use dna_io::{
    parse_query, parse_snapshot, parse_trace, write_response, Artifact, Checkpoint, QueryKind,
    Response, SessionInfo,
};
use net_model::Snapshot;
use std::collections::BTreeMap;
use std::sync::{mpsc, Arc, Mutex};

/// One command on a session thread's channel. Replies are serialized
/// response artifacts sent directly to the requesting client.
enum SessionCmd {
    /// (Re)open the session over an already-parsed snapshot (preload).
    Load(Box<Snapshot>, mpsc::Sender<String>),
    /// (Re)open the session by resuming a checkpoint whose snapshot
    /// source is already resolved (`--resume` preload and streamed
    /// checkpoint artifacts).
    Resume(Box<(Checkpoint, Snapshot)>, mpsc::Sender<String>),
    /// Parse raw snapshot artifact text, then (re)open over it. Raw
    /// text so the parse of a large artifact runs on this session's
    /// thread, never stalling the router (and with it other sessions).
    LoadText(String, mpsc::Sender<String>),
    /// Parse raw trace artifact text, then ingest it epoch by epoch.
    IngestText(String, mpsc::Sender<String>),
    /// Answer one query.
    Query(Box<QueryKind>, mpsc::Sender<String>),
}

/// A running session thread.
struct SessionThread {
    tx: mpsc::Sender<SessionCmd>,
    /// Info line maintained by the session thread after every command
    /// (`None` until a load succeeded). Lets the router answer a
    /// `sessions` query without blocking behind in-flight engine work.
    info: Arc<Mutex<Option<SessionInfo>>>,
    join: std::thread::JoinHandle<ServeSummary>,
}

fn spawn_session(name: String, config: SessionConfig) -> SessionThread {
    let (tx, rx) = mpsc::channel::<SessionCmd>();
    let info = Arc::new(Mutex::new(None));
    let shared = Arc::clone(&info);
    let join = std::thread::spawn(move || session_loop(name, config, rx, &shared));
    SessionThread { tx, info, join }
}

/// (Re)opens `slot` over a snapshot; a failed open keeps the previous
/// session (mirroring `SessionManager::open` semantics on reload).
fn open_session(
    name: &str,
    config: SessionConfig,
    slot: &mut Option<Session>,
    snapshot: Snapshot,
) -> Response {
    let devices = snapshot.device_count() as u64;
    let links = snapshot.links.len() as u64;
    match Session::open(name, snapshot, config) {
        Ok(s) => {
            *slot = Some(s);
            Response::Loaded {
                session: name.to_string(),
                devices,
                links,
            }
        }
        Err(e) => Response::Error(e),
    }
}

/// (Re)opens `slot` by resuming a checkpoint; a failed resume keeps
/// the previous session, mirroring [`open_session`].
fn resume_session(
    config: &SessionConfig,
    slot: &mut Option<Session>,
    ckpt: &Checkpoint,
    snapshot: Snapshot,
) -> Response {
    let devices = snapshot.device_count() as u64;
    let links = snapshot.links.len() as u64;
    match Session::resume(ckpt, snapshot, config) {
        Ok(s) => {
            let session = s.name().to_string();
            *slot = Some(s);
            Response::Loaded {
                session,
                devices,
                links,
            }
        }
        Err(e) => Response::Error(e),
    }
}

/// The engine loop of one session: processes its commands in order
/// until the router drops the channel. Counts what it answers (the
/// router counts only what it answers itself); the per-thread summaries
/// are summed at shutdown.
fn session_loop(
    name: String,
    config: SessionConfig,
    rx: mpsc::Receiver<SessionCmd>,
    info: &Mutex<Option<SessionInfo>>,
) -> ServeSummary {
    let mut session: Option<Session> = None;
    let mut summary = ServeSummary::default();
    for cmd in rx {
        let (response, epochs, reply) = match cmd {
            SessionCmd::Load(snapshot, reply) => (
                open_session(&name, config.clone(), &mut session, *snapshot),
                0,
                reply,
            ),
            SessionCmd::Resume(boxed, reply) => {
                let (ckpt, snapshot) = *boxed;
                (
                    resume_session(&config, &mut session, &ckpt, snapshot),
                    0,
                    reply,
                )
            }
            SessionCmd::LoadText(text, reply) => {
                let response = match parse_snapshot(&text) {
                    Ok(snapshot) => open_session(&name, config.clone(), &mut session, snapshot),
                    Err(e) => Response::Error(e.to_string()),
                };
                (response, 0, reply)
            }
            SessionCmd::IngestText(text, reply) => {
                let (response, epochs) = match parse_trace(&text) {
                    Err(e) => (Response::Error(e.to_string()), 0),
                    Ok(trace) => match session.as_mut() {
                        None => (
                            Response::Error(format!("session {name:?} has no loaded snapshot")),
                            0,
                        ),
                        Some(s) => match s.ingest_trace(&trace) {
                            Ok((epochs, flows)) => (
                                Response::Ingested {
                                    session: name.clone(),
                                    epochs: epochs as u64,
                                    flows: flows as u64,
                                    total: s.epochs() as u64,
                                },
                                epochs as u64,
                            ),
                            Err((applied, e)) => (Response::Error(e), applied as u64),
                        },
                    },
                };
                (response, epochs, reply)
            }
            SessionCmd::Query(kind, reply) => {
                let response = match session.as_ref() {
                    None => Response::Error(format!("session {name:?} has no loaded snapshot")),
                    Some(s) => s.answer(&kind),
                };
                (response, 0, reply)
            }
        };
        // Publish the refreshed info line BEFORE acknowledging: once a
        // client holds our reply, a `sessions` listing must already
        // reflect the command it acknowledges.
        *info.lock().expect("info mutex") = session.as_ref().map(Session::info);
        summary.count(&response, epochs);
        let _ = reply.send(write_response(&response));
    }
    summary
}

/// The router: one engine thread per session, spawned on demand.
pub struct Router {
    config: SessionConfig,
    sessions: BTreeMap<String, SessionThread>,
    default: Option<String>,
    summary: ServeSummary,
}

impl Router {
    /// An empty router; sessions opened later inherit `config`.
    pub fn new(config: SessionConfig) -> Self {
        Router {
            config,
            sessions: BTreeMap::new(),
            default: None,
            summary: ServeSummary::default(),
        }
    }

    /// Opens the named sessions concurrently — one engine thread each,
    /// all running their initial analysis in parallel — and waits for
    /// every bring-up to finish. The first name becomes the default
    /// stream target. On any failure the error is returned and the
    /// router is left without the failed session.
    pub fn preload(&mut self, snapshots: Vec<(String, Snapshot)>) -> Result<Vec<String>, String> {
        let cmds = snapshots
            .into_iter()
            .map(|(name, snapshot)| (name, |reply| SessionCmd::Load(Box::new(snapshot), reply)))
            .collect::<Vec<_>>();
        self.preload_with(cmds)
    }

    /// [`Router::preload`] for checkpoints: every session resumes on
    /// its own engine thread concurrently — a server hosting N
    /// checkpointed sessions pays max-of-resumes, not sum — and the
    /// call returns once all of them are back. Each checkpoint's
    /// snapshot source must already be resolved (see
    /// [`crate::resolve_checkpoint_snapshot`]).
    pub fn preload_checkpoints(
        &mut self,
        checkpoints: Vec<(Checkpoint, Snapshot)>,
    ) -> Result<Vec<String>, String> {
        let cmds = checkpoints
            .into_iter()
            .map(|(ckpt, snapshot)| {
                let name = ckpt.session.clone();
                (name, |reply| {
                    SessionCmd::Resume(Box::new((ckpt, snapshot)), reply)
                })
            })
            .collect::<Vec<_>>();
        self.preload_with(cmds)
    }

    /// Shared preload machinery: route one bring-up command per named
    /// session (spawning engine threads as needed, so every bring-up
    /// runs concurrently), then wait for all of them. On any failure
    /// the error is returned and the failed session is removed.
    fn preload_with(
        &mut self,
        cmds: Vec<(String, impl FnOnce(mpsc::Sender<String>) -> SessionCmd)>,
    ) -> Result<Vec<String>, String> {
        let mut pending = Vec::new();
        for (name, cmd) in cmds {
            let (reply_tx, reply_rx) = mpsc::channel();
            let config = self.config.clone();
            let thread = self
                .sessions
                .entry(name.clone())
                .or_insert_with(|| spawn_session(name.clone(), config));
            thread
                .tx
                .send(cmd(reply_tx))
                .expect("fresh session thread is live");
            if self.default.is_none() {
                self.default = Some(name.clone());
            }
            pending.push((name, reply_rx));
        }
        let mut loaded = Vec::new();
        for (name, reply_rx) in pending {
            let text = reply_rx
                .recv()
                .map_err(|_| format!("session {name:?}: bring-up thread died"))?;
            match dna_io::parse_response(&text) {
                Ok(Response::Error(e)) => {
                    self.remove(&name);
                    return Err(e);
                }
                Ok(_) => loaded.push(text),
                Err(e) => return Err(format!("session {name:?}: malformed load reply: {e}")),
            }
        }
        Ok(loaded)
    }

    fn remove(&mut self, name: &str) {
        if let Some(t) = self.sessions.remove(name) {
            drop(t.tx);
            if let Ok(s) = t.join.join() {
                self.summary.merge(&s);
            }
        }
        if self.default.as_deref() == Some(name) {
            self.default = self.sessions.keys().next().cloned();
        }
    }

    /// Routes one request. The reply reaches the client from whichever
    /// thread answers; the router never blocks on engine work, and only
    /// sniffs artifact headers — full parsing of snapshot/trace bodies
    /// happens on the owning session's thread. A session name exists
    /// from the moment a load is first routed to it: if that load then
    /// fails, the name keeps answering "no loaded snapshot" errors (and
    /// stays out of the `sessions` listing) until a later load
    /// succeeds.
    fn dispatch(&mut self, req: Request) {
        let stream_session = req.session.as_deref();
        let kind = match dna_io::sniff(&req.text) {
            Ok((_, kind)) => kind,
            Err(e) => return self.answer(&req.reply, Response::Error(e.to_string())),
        };
        match kind {
            Artifact::Snapshot => {
                let name = stream_session
                    .or(self.default.as_deref())
                    .unwrap_or("main")
                    .to_string();
                let config = self.config.clone();
                let thread = self
                    .sessions
                    .entry(name.clone())
                    .or_insert_with(|| spawn_session(name.clone(), config));
                if thread
                    .tx
                    .send(SessionCmd::LoadText(req.text, req.reply))
                    .is_err()
                {
                    // Reply channel went down with the thread; the
                    // client's recv fails and it hangs up. Count it.
                    self.summary.errors += 1;
                    self.summary.artifacts += 1;
                }
                if self.default.is_none() {
                    self.default = Some(name);
                }
            }
            Artifact::Trace => {
                let Some(name) = stream_session.or(self.default.as_deref()) else {
                    return self.answer(&req.reply, Response::Error("no session is open".into()));
                };
                match self.sessions.get(name) {
                    Some(thread) => {
                        let _ = thread.tx.send(SessionCmd::IngestText(req.text, req.reply));
                    }
                    None => {
                        let msg = format!("unknown session {name:?}");
                        self.answer(&req.reply, Response::Error(msg));
                    }
                }
            }
            // A streamed checkpoint artifact resumes its own named
            // session. Unlike snapshot/trace bodies, the artifact must
            // be parsed *here*: the target session's name lives inside
            // it. Checkpoint loads are rare (startup, recovery), so the
            // routing stall is acceptable; the bring-up itself still
            // runs on the session's thread.
            Artifact::Checkpoint => match dna_io::parse_checkpoint(&req.text) {
                Ok(ckpt) => match crate::session::resolve_checkpoint_snapshot(&ckpt, None) {
                    Ok(snapshot) => {
                        let name = ckpt.session.clone();
                        let config = self.config.clone();
                        let thread = self
                            .sessions
                            .entry(name.clone())
                            .or_insert_with(|| spawn_session(name.clone(), config));
                        if thread
                            .tx
                            .send(SessionCmd::Resume(Box::new((ckpt, snapshot)), req.reply))
                            .is_err()
                        {
                            self.summary.errors += 1;
                            self.summary.artifacts += 1;
                        }
                        if self.default.is_none() {
                            self.default = Some(name);
                        }
                    }
                    Err(e) => self.answer(&req.reply, Response::Error(e)),
                },
                Err(e) => self.answer(&req.reply, Response::Error(e.to_string())),
            },
            Artifact::Query => match parse_query(&req.text) {
                Ok(q) => {
                    if q.kind == QueryKind::Sessions {
                        let list = self.session_infos();
                        return self.answer(&req.reply, Response::Sessions(list));
                    }
                    let Some(name) = q.session.as_deref().or(self.default.as_deref()) else {
                        return self
                            .answer(&req.reply, Response::Error("no session is open".into()));
                    };
                    match self.sessions.get(name) {
                        Some(thread) => {
                            let _ = thread
                                .tx
                                .send(SessionCmd::Query(Box::new(q.kind), req.reply));
                        }
                        None => {
                            let msg = format!("unknown session {name:?}");
                            self.answer(&req.reply, Response::Error(msg));
                        }
                    }
                }
                Err(e) => self.answer(&req.reply, Response::Error(e.to_string())),
            },
            Artifact::Report | Artifact::Response => self.answer(
                &req.reply,
                Response::Error(format!("cannot serve a {kind} artifact")),
            ),
        }
    }

    /// Collects every session's info line (name-ordered; sessions whose
    /// load failed are omitted) from the per-thread caches, so a
    /// `sessions` query never stalls routing behind a session's
    /// in-flight engine work. The answer can trail commands still in a
    /// session's queue — the price of not blocking every other session
    /// behind the slowest one.
    fn session_infos(&self) -> Vec<SessionInfo> {
        self.sessions
            .values()
            .filter_map(|t| t.info.lock().expect("info mutex").clone())
            .collect()
    }

    /// Answers a request from the router thread itself.
    fn answer(&mut self, reply: &mpsc::Sender<String>, response: Response) {
        self.summary.count(&response, 0);
        let _ = reply.send(write_response(&response));
    }

    /// Runs the routing loop until every request sender is dropped,
    /// then drains the session threads and returns the summed summary.
    pub fn run(mut self, requests: mpsc::Receiver<Request>) -> ServeSummary {
        for req in requests {
            self.dispatch(req);
        }
        let mut summary = self.summary;
        for (_, thread) in std::mem::take(&mut self.sessions) {
            drop(thread.tx);
            if let Ok(s) = thread.join.join() {
                summary.merge(&s);
            }
        }
        summary
    }
}

/// Runs a per-session-threaded serve loop over one artifact stream —
/// the threaded sibling of [`crate::server::serve_stream`], used when a
/// follower or socket pump needs to coexist with the stream.
pub fn route_stream(
    router: Router,
    input: &mut impl std::io::BufRead,
    output: &mut impl std::io::Write,
) -> std::io::Result<ServeSummary> {
    let (tx, rx) = mpsc::channel();
    let summary_thread = std::thread::spawn(move || router.run(rx));
    crate::server::pump_stream(&tx, input, output)?;
    drop(tx);
    Ok(summary_thread.join().expect("router thread panicked"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{pump_stream, read_artifact};
    use dna_io::{parse_response, write_query, write_snapshot, write_trace, Query};
    use std::io::Cursor;
    use topo_gen::{fat_tree, Routing, ScenarioGen, ScenarioKind};

    fn ft4() -> Snapshot {
        fat_tree(4, Routing::Ebgp).snapshot
    }

    #[test]
    fn router_preloads_sessions_in_parallel_and_routes_queries() {
        let mut router = Router::new(SessionConfig::default());
        let loaded = router
            .preload(vec![
                ("a".into(), ft4()),
                ("b".into(), fat_tree(4, Routing::Ospf).snapshot),
            ])
            .expect("both sessions open");
        assert_eq!(loaded.len(), 2);
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || router.run(rx));
        let stream = format!(
            "{}{}{}",
            write_query(&Query {
                session: None,
                kind: QueryKind::Sessions,
            }),
            write_query(&Query {
                session: Some("b".into()),
                kind: QueryKind::Stats,
            }),
            write_query(&Query {
                session: Some("ghost".into()),
                kind: QueryKind::Stats,
            }),
        );
        let mut out = Vec::new();
        pump_stream(&tx, &mut Cursor::new(stream.into_bytes()), &mut out).unwrap();
        drop(tx);
        let summary = handle.join().unwrap();
        assert_eq!(summary.artifacts, 3 + 2); // 2 loads + 3 queries
        assert_eq!(summary.queries, 2); // sessions + stats (loads and the error are not queries)
        assert_eq!(summary.errors, 1);
        let out = String::from_utf8(out).unwrap();
        let mut cursor = Cursor::new(out.into_bytes());
        match parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap() {
            Response::Sessions(list) => {
                assert_eq!(
                    list.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
                    vec!["a", "b"]
                );
            }
            other => panic!("expected sessions, got {other:?}"),
        }
        match parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap() {
            Response::Stats(s) => assert_eq!(s.session, "b"),
            other => panic!("expected stats, got {other:?}"),
        }
        assert!(matches!(
            parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap(),
            Response::Error(_)
        ));
    }

    #[test]
    fn streamed_snapshot_and_trace_reach_their_session() {
        let snap = ft4();
        let mut gen = ScenarioGen::new(11);
        let cs = gen.generate(&snap, ScenarioKind::LinkFailure).unwrap();
        let trace = dna_io::Trace::from_changesets(vec![cs]);
        let stream = format!(
            "{}{}{}",
            write_snapshot(&snap),
            write_trace(&trace),
            write_query(&Query {
                session: Some("main".into()),
                kind: QueryKind::Stats,
            }),
        );
        let router = Router::new(SessionConfig::default());
        let mut out = Vec::new();
        let summary =
            route_stream(router, &mut Cursor::new(stream.into_bytes()), &mut out).unwrap();
        assert_eq!(summary.artifacts, 3);
        assert_eq!(summary.epochs, 1);
        assert_eq!(summary.errors, 0);
        let out = String::from_utf8(out).unwrap();
        let mut cursor = Cursor::new(out.into_bytes());
        assert!(matches!(
            parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap(),
            Response::Loaded { .. }
        ));
        assert!(matches!(
            parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap(),
            Response::Ingested { epochs: 1, .. }
        ));
        match parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap() {
            Response::Stats(s) => assert_eq!((s.session.as_str(), s.epochs), ("main", 1)),
            other => panic!("expected stats, got {other:?}"),
        }
    }
}
