//! Change-stream replay: drive one or both analyzers through an ordered
//! sequence of change epochs with a per-epoch callback.
//!
//! This is the session layer the CLI and offline tooling build on:
//! `dna diff` replays a recorded trace through one analyzer, and
//! `dna replay --verify` replays through both and checks that they agree
//! epoch by epoch (the offline form of the E8 equivalence experiment).

use crate::baseline::ScratchDiffer;
use crate::engine::{BehaviorDiff, DiffEngine, DnaError, FlowDiff};
use data_plane::Outcome;
use net_model::{ChangeSet, Flow, Snapshot};
use std::collections::BTreeSet;
use std::time::Duration;

/// Which analyzer(s) a [`ReplaySession`] drives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplayMode {
    /// Only the incremental [`DiffEngine`].
    Differential,
    /// Only the from-scratch [`ScratchDiffer`] baseline.
    Scratch,
    /// Both, so every epoch's reports can be cross-checked.
    Both,
}

/// The result of replaying one epoch.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// 0-based epoch index within the session.
    pub index: usize,
    /// The incremental analyzer's report, when it ran.
    pub differential: Option<BehaviorDiff>,
    /// The from-scratch analyzer's report, when it ran.
    pub scratch: Option<BehaviorDiff>,
}

impl EpochOutcome {
    /// The report to show: differential when present, scratch otherwise.
    ///
    /// # Panics
    /// Panics if neither analyzer ran. Outcomes produced by a
    /// [`ReplaySession`] always carry at least one report; only a
    /// hand-constructed `EpochOutcome` can violate this.
    pub fn primary(&self) -> &BehaviorDiff {
        self.differential
            .as_ref()
            .or(self.scratch.as_ref())
            .expect("a replay session drives at least one analyzer")
    }

    /// Whether both analyzers ran and produced semantically identical
    /// reports: equal RIB and FIB deltas and equal flow-impact sets
    /// (flows compared order-insensitively; neither analyzer promises an
    /// emission order). `None` when only one analyzer ran.
    pub fn analyzers_agree(&self) -> Option<bool> {
        let (d, s) = (self.differential.as_ref()?, self.scratch.as_ref()?);
        Some(d.rib == s.rib && d.fib == s.fib && sorted_flows(d) == sorted_flows(s))
    }
}

/// Flow diffs in the canonical (src, example, headers) order.
pub fn sorted_flows(diff: &BehaviorDiff) -> Vec<FlowDiff> {
    let mut flows = diff.flows.clone();
    flows.sort_by(|a, b| (&a.src, &a.example, &a.headers).cmp(&(&b.src, &b.example, &b.headers)));
    flows
}

/// Timing and size record of one replayed epoch, kept by the session so
/// every consumer — the `dna-serve` stats query, the bench harness's E9
/// table, `dna diff` summaries — reports the *same* numbers from one
/// code path instead of re-deriving them from discarded outcomes.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// 0-based epoch index within the session.
    pub index: usize,
    /// Primitive changes in the epoch's change set.
    pub changes: usize,
    /// Route-level deltas reported.
    pub rib: usize,
    /// Forwarding-entry deltas reported.
    pub fib: usize,
    /// Flow-level reachability diffs reported.
    pub flows: usize,
    /// Control-plane stage wall-clock.
    pub cp_time: Duration,
    /// Data-plane stage wall-clock.
    pub dp_time: Duration,
    /// End-to-end apply wall-clock.
    pub total_time: Duration,
    /// Dataflow tuples processed (0 for the from-scratch analyzer).
    pub cp_tuples: usize,
    /// Dataflow operators skipped by dirty-node scheduling (0 for the
    /// from-scratch analyzer).
    pub nodes_skipped: usize,
    /// Packet classes recomputed (0 for the from-scratch analyzer).
    pub dirty_classes: usize,
}

/// Session-cumulative view of the per-epoch records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayTotals {
    /// Epochs replayed.
    pub epochs: usize,
    /// Primitive changes applied.
    pub changes: usize,
    /// Route-level deltas reported.
    pub rib: usize,
    /// Forwarding-entry deltas reported.
    pub fib: usize,
    /// Flow-level reachability diffs reported.
    pub flows: usize,
    /// Cumulative control-plane stage time.
    pub cp_time: Duration,
    /// Cumulative data-plane stage time.
    pub dp_time: Duration,
    /// Cumulative end-to-end apply time.
    pub total_time: Duration,
}

/// A [`ReplaySession`]'s durable state: the value side of session
/// checkpointing. Engine state is deliberately absent — the analyzers
/// guarantee that a fresh bring-up on the *current* snapshot (base plus
/// every applied epoch) is observationally identical to the incremental
/// engine's state (the E8 equivalence property the corpus pins
/// byte-for-byte), so the current snapshot plus the counters **is** the
/// session, durably. `dna-io` carries this as the `checkpoint` artifact;
/// `dna-serve` adds its own layer (retained history, config) on top.
#[derive(Debug, Clone)]
pub struct ReplayCheckpoint {
    /// The session's current snapshot (base plus every applied epoch).
    pub snapshot: Snapshot,
    /// Epochs applied when the checkpoint was taken.
    pub epochs: usize,
    /// Session-cumulative totals at the checkpoint.
    pub totals: ReplayTotals,
}

/// A stateful replay of a change stream over a base snapshot.
pub struct ReplaySession {
    engine: Option<DiffEngine>,
    scratch: Option<ScratchDiffer>,
    /// Recent per-epoch records, bounded by `stats_retain` so unbounded
    /// streams (a long-running `dna-serve` daemon) hold constant memory.
    stats: std::collections::VecDeque<EpochStats>,
    stats_retain: usize,
    epochs: usize,
    totals: ReplayTotals,
}

/// Per-epoch records kept by default; history queries needing more can
/// raise it via [`ReplaySession::set_stats_retention`]. Cumulative
/// [`ReplaySession::totals`] are unaffected — they are maintained
/// incrementally over *every* epoch ever replayed.
pub const DEFAULT_STATS_RETENTION: usize = 4096;

impl ReplaySession {
    /// Builds the session, initializing the selected analyzer(s) on the
    /// base snapshot (this is where from-scratch initial simulation
    /// happens for the differential engine). Single-shard bring-up; see
    /// [`ReplaySession::with_shards`].
    pub fn new(snapshot: Snapshot, mode: ReplayMode) -> Result<Self, DnaError> {
        Self::with_shards(snapshot, mode, 1)
    }

    /// [`ReplaySession::new`] with both analyzers brought up through
    /// the sharded init pipeline ([`DiffEngine::with_shards`] /
    /// [`ScratchDiffer::with_shards`]): the expensive initial load fans
    /// out over `shards` workers while every observable output stays
    /// identical to the single-threaded path.
    pub fn with_shards(
        snapshot: Snapshot,
        mode: ReplayMode,
        shards: usize,
    ) -> Result<Self, DnaError> {
        let engine = match mode {
            ReplayMode::Differential | ReplayMode::Both => {
                Some(DiffEngine::with_shards(snapshot.clone(), shards)?)
            }
            ReplayMode::Scratch => None,
        };
        let scratch = match mode {
            ReplayMode::Scratch | ReplayMode::Both => {
                Some(ScratchDiffer::with_shards(snapshot, shards)?)
            }
            ReplayMode::Differential => None,
        };
        Ok(ReplaySession {
            engine,
            scratch,
            stats: std::collections::VecDeque::new(),
            stats_retain: DEFAULT_STATS_RETENTION,
            epochs: 0,
            totals: ReplayTotals::default(),
        })
    }

    /// Captures the session's durable state: current snapshot plus the
    /// applied-epoch counters. Cheap relative to an engine bring-up
    /// (one snapshot clone); safe at any epoch boundary.
    pub fn checkpoint(&self) -> ReplayCheckpoint {
        ReplayCheckpoint {
            snapshot: self.snapshot().clone(),
            epochs: self.epochs,
            totals: self.totals,
        }
    }

    /// Rebuilds a session from a checkpoint: sharded bring-up of the
    /// selected analyzer(s) on the checkpointed snapshot, then a
    /// fast-forward of the epoch counter and cumulative totals. The
    /// resumed session is observationally identical to one that
    /// replayed every epoch and never stopped: subsequent
    /// [`ReplaySession::step`] outcomes, [`ReplaySession::query`]
    /// answers and [`ReplaySession::totals`] match byte-for-byte /
    /// value-for-value (the per-epoch [`ReplaySession::epoch_stats`]
    /// window restarts empty — those records are wall-clock timings of
    /// a process that no longer exists).
    pub fn resume(
        ckpt: ReplayCheckpoint,
        mode: ReplayMode,
        shards: usize,
    ) -> Result<Self, DnaError> {
        let mut session = Self::with_shards(ckpt.snapshot, mode, shards)?;
        session.epochs = ckpt.epochs;
        session.totals = ckpt.totals;
        Ok(session)
    }

    /// The current snapshot (base plus every replayed epoch).
    pub fn snapshot(&self) -> &Snapshot {
        self.engine
            .as_ref()
            .map(|e| e.snapshot())
            .or_else(|| self.scratch.as_ref().map(|s| s.snapshot()))
            .expect("a replay session drives at least one analyzer")
    }

    /// Number of epochs replayed so far.
    pub fn epochs_replayed(&self) -> usize {
        self.epochs
    }

    /// The retained per-epoch timing and size records, oldest first
    /// (each carries its absolute `index`). Timings come from the
    /// differential analyzer when it runs, else from the from-scratch
    /// baseline. Bounded — see [`ReplaySession::set_stats_retention`].
    pub fn epoch_stats(&self) -> impl Iterator<Item = &EpochStats> {
        self.stats.iter()
    }

    /// The freshest retained per-epoch record — the one `step`
    /// (`ReplaySession::step`) just pushed. Telemetry reads the last
    /// applied epoch's stage timings here without re-deriving them.
    pub fn last_stats(&self) -> Option<&EpochStats> {
        self.stats.back()
    }

    /// Bounds the per-epoch record window (the cumulative totals keep
    /// counting regardless). Trims immediately if over the new bound.
    pub fn set_stats_retention(&mut self, retain: usize) {
        self.stats_retain = retain.max(1);
        while self.stats.len() > self.stats_retain {
            self.stats.pop_front();
        }
    }

    /// Session-cumulative totals over every epoch ever replayed,
    /// maintained incrementally (O(1) regardless of stream length).
    pub fn totals(&self) -> ReplayTotals {
        self.totals
    }

    /// Outcomes of a concrete flow injected at `src` on the *current*
    /// state, answered incrementally by the differential engine. `None`
    /// in [`ReplayMode::Scratch`] — the baseline has no live data plane,
    /// and answering would mean a from-scratch re-simulation, exactly
    /// what the query path must never do.
    pub fn query(&self, src: &str, flow: &Flow) -> Option<BTreeSet<Outcome>> {
        self.engine.as_ref().map(|e| e.query(src, flow))
    }

    /// Captures an immutable queryable view of the differential engine's
    /// current state (see [`DiffEngine::view`]). `None` in
    /// [`ReplayMode::Scratch`] for the same reason
    /// [`ReplaySession::query`] declines: the baseline has no live
    /// incremental state to snapshot.
    pub fn view(&self) -> Option<crate::engine::EngineView> {
        self.engine.as_ref().map(|e| e.view())
    }

    /// The live differential engine, when this session drives one. Gives
    /// long-running front-ends (e.g. `dna-serve`) access to the richer
    /// incremental query surface — state sizes, class counts, probe
    /// flows — without re-deriving any of it from scratch.
    pub fn engine(&self) -> Option<&DiffEngine> {
        self.engine.as_ref()
    }

    /// Applies one epoch to every active analyzer. Atomic across
    /// analyzers: on error, neither the live engine nor the shadow has
    /// advanced, so session state never diverges from recorded history.
    pub fn step(&mut self, changes: &ChangeSet) -> Result<EpochOutcome, DnaError> {
        // Scratch first — its `apply` mutates nothing on failure, and if
        // the differential stage then fails the shadow is restored from
        // its (snapshot-only, cheap to save) state. Applying the engine
        // first would be unsound the other way: `DiffEngine` has no
        // rollback, so a later shadow failure would leave the live
        // engine one epoch ahead of everything the session recorded.
        // The insurance copy is only needed when a later engine failure
        // could strand an advanced shadow — i.e. when both analyzers run.
        let shadow_state = if self.engine.is_some() {
            self.scratch.as_ref().map(|s| s.snapshot().clone())
        } else {
            None
        };
        let scratch = self
            .scratch
            .as_mut()
            .map(|s| s.apply(changes))
            .transpose()?;
        let differential = match self.engine.as_mut().map(|e| e.apply(changes)).transpose() {
            Ok(d) => d,
            Err(e) => {
                if let (Some(snap), Some(slot)) = (shadow_state, self.scratch.as_mut()) {
                    // The state was the shadow's own pre-epoch snapshot,
                    // so rebuilding from it cannot fail in practice; if
                    // it somehow does, the original error still stands.
                    if let Ok(restored) = ScratchDiffer::new(snap) {
                        *slot = restored;
                    }
                }
                return Err(e);
            }
        };
        let outcome = EpochOutcome {
            index: self.epochs,
            differential,
            scratch,
        };
        let primary = outcome.primary();
        self.totals.epochs += 1;
        self.totals.changes += changes.len();
        self.totals.rib += primary.rib.len();
        self.totals.fib += primary.fib.len();
        self.totals.flows += primary.flows.len();
        self.totals.cp_time += primary.stats.cp_time;
        self.totals.dp_time += primary.stats.dp_time;
        self.totals.total_time += primary.stats.total_time;
        self.stats.push_back(EpochStats {
            index: outcome.index,
            changes: changes.len(),
            rib: primary.rib.len(),
            fib: primary.fib.len(),
            flows: primary.flows.len(),
            cp_time: primary.stats.cp_time,
            dp_time: primary.stats.dp_time,
            total_time: primary.stats.total_time,
            cp_tuples: primary.stats.cp_tuples,
            nodes_skipped: primary.stats.nodes_skipped,
            dirty_classes: primary.stats.dirty_classes,
        });
        while self.stats.len() > self.stats_retain {
            self.stats.pop_front();
        }
        self.epochs += 1;
        Ok(outcome)
    }

    /// Applies several change epochs as **one** dataflow commit: the
    /// change lists are concatenated in arrival order into a single
    /// [`ChangeSet`] and fed through [`ReplaySession::step`] once — one
    /// engine commit, one `CommitStats`, one retained [`EpochStats`]
    /// record, and the session's epoch counter advances by one.
    ///
    /// Because a change set is validated and applied change-by-change
    /// against the evolving state, the merged commit reaches exactly
    /// the final state N sequential [`ReplaySession::step`] calls
    /// would (the property `tests/coalesce.rs` pins under proptest,
    /// shards 1/2/4); under [`ReplayMode::Both`] the merged epoch is
    /// cross-checked against the from-scratch shadow like any other.
    /// What coalescing trades away is per-epoch observability — the N
    /// intermediate states and their individual diffs are never
    /// materialized (one stats record, anchored at the first merged
    /// epoch's index, covers the whole commit). The epoch *counter*
    /// still advances by N: how many stream epochs the session has
    /// absorbed is observable (stats, replies, checkpoints) and must
    /// not depend on commit granularity. Atomic like `step`: on error
    /// nothing is applied (an invalid change anywhere fails the whole
    /// merged commit, where sequential stepping would have applied the
    /// earlier epochs — callers wanting stream semantics on failure
    /// fall back to per-epoch stepping, as `dna-serve` does).
    pub fn step_coalesced<'a>(
        &mut self,
        epochs: impl IntoIterator<Item = &'a ChangeSet>,
    ) -> Result<EpochOutcome, DnaError> {
        let epochs: Vec<&ChangeSet> = epochs.into_iter().collect();
        if let [single] = epochs[..] {
            return self.step(single);
        }
        let mut merged = ChangeSet::default();
        merged
            .changes
            .reserve(epochs.iter().map(|cs| cs.len()).sum());
        for cs in &epochs {
            merged.changes.extend(cs.changes.iter().cloned());
        }
        let outcome = self.step(&merged)?;
        // `step` counted one epoch; account for the other N-1 so epoch
        // numbering (and the next commit's index) match the stream.
        self.epochs += epochs.len() - 1;
        self.totals.epochs += epochs.len() - 1;
        Ok(outcome)
    }

    /// Replays a whole stream, invoking `on_epoch` after each epoch. The
    /// callback sees the epoch's change set alongside its outcome, so
    /// callers can render, verify or persist as the stream advances.
    /// Stops at the first failing epoch.
    pub fn replay<'a, F>(
        &mut self,
        epochs: impl IntoIterator<Item = &'a ChangeSet>,
        mut on_epoch: F,
    ) -> Result<(), DnaError>
    where
        F: FnMut(usize, &ChangeSet, &EpochOutcome),
    {
        for cs in epochs {
            let outcome = self.step(cs)?;
            on_epoch(outcome.index, cs, &outcome);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::{Change, NetBuilder};

    fn two_routers() -> Snapshot {
        NetBuilder::new()
            .router("r1")
            .iface("r1", "eth0", "10.0.0.1/31")
            .iface("r1", "lan", "192.168.1.1/24")
            .router("r2")
            .iface("r2", "eth0", "10.0.0.0/31")
            .iface("r2", "lan", "192.168.2.1/24")
            .link("r1", "eth0", "r2", "eth0")
            .ospf("r1", "eth0", 1)
            .ospf("r2", "eth0", 1)
            .ospf_passive("r1", "lan", 1)
            .ospf_passive("r2", "lan", 1)
            .build()
    }

    #[test]
    fn both_mode_replays_and_agrees() {
        let snap = two_routers();
        let link = snap.links[0].clone();
        let mut session = ReplaySession::new(snap, ReplayMode::Both).unwrap();
        let stream = [
            ChangeSet::single(Change::LinkDown(link.clone())),
            ChangeSet::single(Change::LinkUp(link)),
        ];
        let mut seen = Vec::new();
        session
            .replay(stream.iter(), |i, cs, out| {
                assert_eq!(out.index, i);
                assert_eq!(cs.len(), 1);
                assert_eq!(out.analyzers_agree(), Some(true));
                seen.push(out.primary().flows.len());
            })
            .unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(session.epochs_replayed(), 2);
        assert!(seen[0] > 0, "link failure must change behavior");
    }

    #[test]
    fn single_analyzer_modes() {
        let snap = two_routers();
        let link = snap.links[0].clone();
        let cs = ChangeSet::single(Change::LinkDown(link));
        let mut diff_only = ReplaySession::new(snap.clone(), ReplayMode::Differential).unwrap();
        let out = diff_only.step(&cs).unwrap();
        assert!(out.differential.is_some() && out.scratch.is_none());
        assert_eq!(out.analyzers_agree(), None);
        assert!(!out.primary().is_noop());
        let mut scratch_only = ReplaySession::new(snap, ReplayMode::Scratch).unwrap();
        let out = scratch_only.step(&cs).unwrap();
        assert!(out.differential.is_none() && out.scratch.is_some());
        assert!(!out.primary().is_noop());
        assert_eq!(scratch_only.snapshot().up_links().count(), 0);
    }

    #[test]
    fn epoch_stats_accumulate_and_queries_are_live() {
        let snap = two_routers();
        let link = snap.links[0].clone();
        let lan2 = Flow::tcp_to(net_model::ip("192.168.2.1"), 80);
        let mut session = ReplaySession::new(snap, ReplayMode::Both).unwrap();
        let before = session.query("r1", &lan2).expect("differential runs");
        assert!(!before.is_empty());
        let out = session
            .step(&ChangeSet::single(Change::LinkDown(link)))
            .unwrap();
        // The stats record mirrors the outcome the same step returned.
        let stats: Vec<_> = session.epoch_stats().cloned().collect();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].index, 0);
        assert_eq!(stats[0].changes, 1);
        assert_eq!(stats[0].flows, out.primary().flows.len());
        assert_eq!(stats[0].rib, out.primary().rib.len());
        assert!(stats[0].total_time >= stats[0].cp_time);
        let t = session.totals();
        assert_eq!(t.epochs, 1);
        assert_eq!(t.flows, stats[0].flows);
        assert!(t.total_time >= t.cp_time);
        // The query path tracks the evolving state without recompute.
        let after = session.query("r1", &lan2).expect("differential runs");
        assert_ne!(before, after, "link failure must change the answer");
        // Scratch-only sessions refuse live queries by construction.
        let scratch_only = ReplaySession::new(two_routers(), ReplayMode::Scratch).unwrap();
        assert!(scratch_only.query("r1", &lan2).is_none());
    }

    #[test]
    fn stats_retention_bounds_records_but_not_totals() {
        let snap = two_routers();
        let link = snap.links[0].clone();
        let mut session = ReplaySession::new(snap, ReplayMode::Differential).unwrap();
        session.set_stats_retention(2);
        for i in 0..5 {
            let ch = if i % 2 == 0 {
                Change::LinkDown(link.clone())
            } else {
                Change::LinkUp(link.clone())
            };
            session.step(&ChangeSet::single(ch)).unwrap();
        }
        // Only the freshest records are retained, with absolute indices;
        // the cumulative view still covers the full stream.
        assert_eq!(
            session.epoch_stats().map(|s| s.index).collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert_eq!(session.epochs_replayed(), 5);
        assert_eq!(session.totals().epochs, 5);
        assert!(session.totals().flows > 0);
    }

    /// checkpoint → resume → remaining epochs must be indistinguishable
    /// from a straight-through replay: identical per-epoch reports
    /// (both analyzers), identical live-query answers, identical
    /// cumulative counters.
    #[test]
    fn resumed_session_is_observationally_identical() {
        let snap = two_routers();
        let link = snap.links[0].clone();
        let lan2 = Flow::tcp_to(net_model::ip("192.168.2.1"), 80);
        let stream: Vec<ChangeSet> = (0..4)
            .map(|i| {
                ChangeSet::single(if i % 2 == 0 {
                    Change::LinkDown(link.clone())
                } else {
                    Change::LinkUp(link.clone())
                })
            })
            .collect();
        let mut straight = ReplaySession::new(snap.clone(), ReplayMode::Both).unwrap();
        let mut resumed = ReplaySession::new(snap, ReplayMode::Both).unwrap();
        for cs in &stream[..2] {
            straight.step(cs).unwrap();
            resumed.step(cs).unwrap();
        }
        // Simulate the restart: drop the live session, keep only its
        // checkpoint, and bring a new one up from it (sharded).
        let ckpt = resumed.checkpoint();
        let pre_restart_totals = resumed.totals();
        drop(resumed);
        let mut resumed = ReplaySession::resume(ckpt, ReplayMode::Both, 2).unwrap();
        assert_eq!(resumed.epochs_replayed(), 2);
        // The cumulative totals (wall-clock included) survive the
        // restart exactly — they are the same session's counters.
        assert_eq!(resumed.totals(), pre_restart_totals);
        for cs in &stream[2..] {
            let a = straight.step(cs).unwrap();
            let b = resumed.step(cs).unwrap();
            assert_eq!(b.index, a.index);
            assert_eq!(b.analyzers_agree(), Some(true));
            assert_eq!(
                sorted_flows(b.primary()),
                sorted_flows(a.primary()),
                "post-resume reports must match straight-through"
            );
            assert_eq!(b.primary().rib, a.primary().rib);
            assert_eq!(b.primary().fib, a.primary().fib);
        }
        assert_eq!(resumed.query("r1", &lan2), straight.query("r1", &lan2));
        assert_eq!(resumed.epochs_replayed(), straight.epochs_replayed());
        let (a, b) = (straight.totals(), resumed.totals());
        assert_eq!(
            (a.epochs, a.changes, a.rib, a.fib, a.flows),
            (b.epochs, b.changes, b.rib, b.fib, b.flows)
        );
        // The stats window restarts empty but indexes stay absolute.
        assert_eq!(
            resumed.epoch_stats().map(|s| s.index).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    /// One merged commit of N epochs must land on the final state N
    /// sequential commits reach (live queries agree), advance the
    /// epoch counter by one, retain one stats record covering all the
    /// merged changes — and stay atomic on failure.
    #[test]
    fn coalesced_step_matches_sequential_final_state() {
        let snap = two_routers();
        let link = snap.links[0].clone();
        let lan2 = Flow::tcp_to(net_model::ip("192.168.2.1"), 80);
        let stream = [
            ChangeSet::single(Change::LinkDown(link.clone())),
            ChangeSet::single(Change::LinkUp(link.clone())),
            ChangeSet::single(Change::LinkDown(link.clone())),
        ];
        let mut sequential = ReplaySession::new(snap.clone(), ReplayMode::Both).unwrap();
        for cs in &stream {
            sequential.step(cs).unwrap();
        }
        let mut coalesced = ReplaySession::new(snap, ReplayMode::Both).unwrap();
        let out = coalesced.step_coalesced(stream.iter()).unwrap();
        assert_eq!(out.analyzers_agree(), Some(true));
        assert_eq!(out.index, 0, "merged record anchors at the first epoch");
        assert_eq!(
            coalesced.epochs_replayed(),
            3,
            "epoch accounting follows the stream, not commit granularity"
        );
        assert_eq!(coalesced.query("r1", &lan2), sequential.query("r1", &lan2));
        assert_eq!(
            coalesced.snapshot(),
            sequential.snapshot(),
            "merged commit must land on the sequential final snapshot"
        );
        let stats: Vec<_> = coalesced.epoch_stats().collect();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].changes, 3, "one record covers all merged changes");
        // A single-element merge takes the plain step path.
        let mut one = ReplaySession::new(two_routers(), ReplayMode::Differential).unwrap();
        one.step_coalesced(stream[..1].iter()).unwrap();
        assert_eq!(one.epochs_replayed(), 1);
        // Atomicity: an invalid change anywhere fails the whole merged
        // commit without applying any of it.
        let bad = [
            stream[0].clone(),
            ChangeSet::single(Change::DeviceDown("ghost".into())),
        ];
        let mut aborted = ReplaySession::new(two_routers(), ReplayMode::Both).unwrap();
        assert!(aborted.step_coalesced(bad.iter()).is_err());
        assert_eq!(aborted.epochs_replayed(), 0);
        assert_eq!(aborted.snapshot().up_links().count(), 1);
    }

    #[test]
    fn error_epoch_reports_and_stops() {
        let snap = two_routers();
        let mut session = ReplaySession::new(snap, ReplayMode::Both).unwrap();
        let bad = ChangeSet::single(Change::DeviceDown("ghost".into()));
        assert!(session.step(&bad).is_err());
    }
}
