//! Change-stream replay: drive one or both analyzers through an ordered
//! sequence of change epochs with a per-epoch callback.
//!
//! This is the session layer the CLI and offline tooling build on:
//! `dna diff` replays a recorded trace through one analyzer, and
//! `dna replay --verify` replays through both and checks that they agree
//! epoch by epoch (the offline form of the E8 equivalence experiment).

use crate::baseline::ScratchDiffer;
use crate::engine::{BehaviorDiff, DiffEngine, DnaError, FlowDiff};
use net_model::{ChangeSet, Snapshot};

/// Which analyzer(s) a [`ReplaySession`] drives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplayMode {
    /// Only the incremental [`DiffEngine`].
    Differential,
    /// Only the from-scratch [`ScratchDiffer`] baseline.
    Scratch,
    /// Both, so every epoch's reports can be cross-checked.
    Both,
}

/// The result of replaying one epoch.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// 0-based epoch index within the session.
    pub index: usize,
    /// The incremental analyzer's report, when it ran.
    pub differential: Option<BehaviorDiff>,
    /// The from-scratch analyzer's report, when it ran.
    pub scratch: Option<BehaviorDiff>,
}

impl EpochOutcome {
    /// The report to show: differential when present, scratch otherwise.
    ///
    /// # Panics
    /// Panics if neither analyzer ran. Outcomes produced by a
    /// [`ReplaySession`] always carry at least one report; only a
    /// hand-constructed `EpochOutcome` can violate this.
    pub fn primary(&self) -> &BehaviorDiff {
        self.differential
            .as_ref()
            .or(self.scratch.as_ref())
            .expect("a replay session drives at least one analyzer")
    }

    /// Whether both analyzers ran and produced semantically identical
    /// reports: equal RIB and FIB deltas and equal flow-impact sets
    /// (flows compared order-insensitively; neither analyzer promises an
    /// emission order). `None` when only one analyzer ran.
    pub fn analyzers_agree(&self) -> Option<bool> {
        let (d, s) = (self.differential.as_ref()?, self.scratch.as_ref()?);
        Some(d.rib == s.rib && d.fib == s.fib && sorted_flows(d) == sorted_flows(s))
    }
}

/// Flow diffs in the canonical (src, example, headers) order.
pub fn sorted_flows(diff: &BehaviorDiff) -> Vec<FlowDiff> {
    let mut flows = diff.flows.clone();
    flows.sort_by(|a, b| (&a.src, &a.example, &a.headers).cmp(&(&b.src, &b.example, &b.headers)));
    flows
}

/// A stateful replay of a change stream over a base snapshot.
pub struct ReplaySession {
    engine: Option<DiffEngine>,
    scratch: Option<ScratchDiffer>,
    steps: usize,
}

impl ReplaySession {
    /// Builds the session, initializing the selected analyzer(s) on the
    /// base snapshot (this is where from-scratch initial simulation
    /// happens for the differential engine).
    pub fn new(snapshot: Snapshot, mode: ReplayMode) -> Result<Self, DnaError> {
        let engine = match mode {
            ReplayMode::Differential | ReplayMode::Both => Some(DiffEngine::new(snapshot.clone())?),
            ReplayMode::Scratch => None,
        };
        let scratch = match mode {
            ReplayMode::Scratch | ReplayMode::Both => Some(ScratchDiffer::new(snapshot)?),
            ReplayMode::Differential => None,
        };
        Ok(ReplaySession {
            engine,
            scratch,
            steps: 0,
        })
    }

    /// The current snapshot (base plus every replayed epoch).
    pub fn snapshot(&self) -> &Snapshot {
        self.engine
            .as_ref()
            .map(|e| e.snapshot())
            .or_else(|| self.scratch.as_ref().map(|s| s.snapshot()))
            .expect("a replay session drives at least one analyzer")
    }

    /// Number of epochs replayed so far.
    pub fn epochs_replayed(&self) -> usize {
        self.steps
    }

    /// Applies one epoch to every active analyzer.
    pub fn step(&mut self, changes: &ChangeSet) -> Result<EpochOutcome, DnaError> {
        let differential = self.engine.as_mut().map(|e| e.apply(changes)).transpose()?;
        let scratch = self
            .scratch
            .as_mut()
            .map(|s| s.apply(changes))
            .transpose()?;
        let outcome = EpochOutcome {
            index: self.steps,
            differential,
            scratch,
        };
        self.steps += 1;
        Ok(outcome)
    }

    /// Replays a whole stream, invoking `on_epoch` after each epoch. The
    /// callback sees the epoch's change set alongside its outcome, so
    /// callers can render, verify or persist as the stream advances.
    /// Stops at the first failing epoch.
    pub fn replay<'a, F>(
        &mut self,
        epochs: impl IntoIterator<Item = &'a ChangeSet>,
        mut on_epoch: F,
    ) -> Result<(), DnaError>
    where
        F: FnMut(usize, &ChangeSet, &EpochOutcome),
    {
        for cs in epochs {
            let outcome = self.step(cs)?;
            on_epoch(outcome.index, cs, &outcome);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::{Change, NetBuilder};

    fn two_routers() -> Snapshot {
        NetBuilder::new()
            .router("r1")
            .iface("r1", "eth0", "10.0.0.1/31")
            .iface("r1", "lan", "192.168.1.1/24")
            .router("r2")
            .iface("r2", "eth0", "10.0.0.0/31")
            .iface("r2", "lan", "192.168.2.1/24")
            .link("r1", "eth0", "r2", "eth0")
            .ospf("r1", "eth0", 1)
            .ospf("r2", "eth0", 1)
            .ospf_passive("r1", "lan", 1)
            .ospf_passive("r2", "lan", 1)
            .build()
    }

    #[test]
    fn both_mode_replays_and_agrees() {
        let snap = two_routers();
        let link = snap.links[0].clone();
        let mut session = ReplaySession::new(snap, ReplayMode::Both).unwrap();
        let stream = [
            ChangeSet::single(Change::LinkDown(link.clone())),
            ChangeSet::single(Change::LinkUp(link)),
        ];
        let mut seen = Vec::new();
        session
            .replay(stream.iter(), |i, cs, out| {
                assert_eq!(out.index, i);
                assert_eq!(cs.len(), 1);
                assert_eq!(out.analyzers_agree(), Some(true));
                seen.push(out.primary().flows.len());
            })
            .unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(session.epochs_replayed(), 2);
        assert!(seen[0] > 0, "link failure must change behavior");
    }

    #[test]
    fn single_analyzer_modes() {
        let snap = two_routers();
        let link = snap.links[0].clone();
        let cs = ChangeSet::single(Change::LinkDown(link));
        let mut diff_only = ReplaySession::new(snap.clone(), ReplayMode::Differential).unwrap();
        let out = diff_only.step(&cs).unwrap();
        assert!(out.differential.is_some() && out.scratch.is_none());
        assert_eq!(out.analyzers_agree(), None);
        assert!(!out.primary().is_noop());
        let mut scratch_only = ReplaySession::new(snap, ReplayMode::Scratch).unwrap();
        let out = scratch_only.step(&cs).unwrap();
        assert!(out.differential.is_none() && out.scratch.is_some());
        assert!(!out.primary().is_noop());
        assert_eq!(scratch_only.snapshot().up_links().count(), 0);
    }

    #[test]
    fn error_epoch_reports_and_stops() {
        let snap = two_routers();
        let mut session = ReplaySession::new(snap, ReplayMode::Both).unwrap();
        let bad = ChangeSet::single(Change::DeviceDown("ghost".into()));
        assert!(session.step(&bad).is_err());
    }
}
