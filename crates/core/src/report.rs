//! Human-readable change-impact reports over [`BehaviorDiff`]s.

use crate::engine::{BehaviorDiff, FlowDiff};
use data_plane::Outcome;
use std::collections::BTreeSet;
use std::fmt::Write;

/// Category of an end-to-end reachability change.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum FlowChangeKind {
    /// Previously delivered somewhere, now never delivered.
    Lost,
    /// Previously never delivered, now delivered somewhere.
    Gained,
    /// Still delivered, but at a different device (egress shifted).
    Rerouted,
    /// A forwarding loop appeared.
    LoopIntroduced,
    /// A forwarding loop disappeared.
    LoopResolved,
    /// Some other outcome change (blackhole moved, filter point moved...).
    Other,
}

impl std::fmt::Display for FlowChangeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FlowChangeKind::Lost => "LOST",
            FlowChangeKind::Gained => "GAINED",
            FlowChangeKind::Rerouted => "REROUTED",
            FlowChangeKind::LoopIntroduced => "LOOP+",
            FlowChangeKind::LoopResolved => "LOOP-",
            FlowChangeKind::Other => "CHANGED",
        };
        write!(f, "{s}")
    }
}

fn delivered_at(outcomes: &BTreeSet<Outcome>) -> BTreeSet<&String> {
    outcomes
        .iter()
        .filter_map(|o| match o {
            Outcome::Delivered(d) | Outcome::External(d) => Some(d),
            _ => None,
        })
        .collect()
}

/// Classifies one flow diff.
pub fn classify(diff: &FlowDiff) -> FlowChangeKind {
    let (b, a) = (delivered_at(&diff.before), delivered_at(&diff.after));
    let loop_b = diff.before.contains(&Outcome::Loop);
    let loop_a = diff.after.contains(&Outcome::Loop);
    if loop_a && !loop_b {
        FlowChangeKind::LoopIntroduced
    } else if loop_b && !loop_a {
        FlowChangeKind::LoopResolved
    } else if !b.is_empty() && a.is_empty() {
        FlowChangeKind::Lost
    } else if b.is_empty() && !a.is_empty() {
        FlowChangeKind::Gained
    } else if !b.is_empty() && b != a {
        FlowChangeKind::Rerouted
    } else {
        FlowChangeKind::Other
    }
}

/// Counts per category.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// `(category, count)` pairs in category order.
    pub counts: Vec<(FlowChangeKind, usize)>,
    /// Route changes (installed, withdrawn).
    pub routes: (usize, usize),
    /// Forwarding-entry changes (added, removed).
    pub fib: (usize, usize),
}

/// Summarizes a behavior diff.
pub fn summarize(diff: &BehaviorDiff) -> Summary {
    let mut map: std::collections::BTreeMap<FlowChangeKind, usize> = Default::default();
    for f in &diff.flows {
        *map.entry(classify(f)).or_insert(0) += 1;
    }
    Summary {
        counts: map.into_iter().collect(),
        routes: (
            diff.rib.iter().filter(|(_, d)| *d > 0).count(),
            diff.rib.iter().filter(|(_, d)| *d < 0).count(),
        ),
        fib: (
            diff.fib.iter().filter(|(_, d)| *d > 0).count(),
            diff.fib.iter().filter(|(_, d)| *d < 0).count(),
        ),
    }
}

/// Renders a full report: summary plus up to `limit` flow-level lines.
pub fn render(diff: &BehaviorDiff, limit: usize) -> String {
    let mut out = String::new();
    let s = summarize(diff);
    let _ = writeln!(
        out,
        "routes: +{} -{} | fib: +{} -{} | affected flow classes: {}",
        s.routes.0,
        s.routes.1,
        s.fib.0,
        s.fib.1,
        diff.flows.len()
    );
    for (kind, n) in &s.counts {
        let _ = writeln!(out, "  {kind}: {n}");
    }
    for f in diff.flows.iter().take(limit) {
        let before: Vec<String> = f.before.iter().map(|o| o.to_string()).collect();
        let after: Vec<String> = f.after.iter().map(|o| o.to_string()).collect();
        let _ = writeln!(
            out,
            "  [{}] from {}: {} | {} -> {}",
            classify(f),
            f.src,
            f.headers.first().cloned().unwrap_or_default(),
            before.join(","),
            after.join(",")
        );
    }
    if diff.flows.len() > limit {
        let _ = writeln!(out, "  … {} more", diff.flows.len() - limit);
    }
    let _ = writeln!(
        out,
        "timing: cp {:?} + dp {:?} = {:?} ({} engine tuples, {} dirty classes)",
        diff.stats.cp_time,
        diff.stats.dp_time,
        diff.stats.total_time,
        diff.stats.cp_tuples,
        diff.stats.dirty_classes
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::{ip, Flow};

    fn fd(before: Vec<Outcome>, after: Vec<Outcome>) -> FlowDiff {
        FlowDiff {
            src: "r1".into(),
            headers: vec!["dst=10.0.0.0..10.0.0.255".into()],
            example: Flow::tcp_to(ip("10.0.0.1"), 80),
            before: before.into_iter().collect(),
            after: after.into_iter().collect(),
        }
    }

    #[test]
    fn classification_covers_the_taxonomy() {
        use Outcome::*;
        assert_eq!(
            classify(&fd(
                vec![Delivered("a".into())],
                vec![Blackhole("b".into())]
            )),
            FlowChangeKind::Lost
        );
        assert_eq!(
            classify(&fd(
                vec![Blackhole("b".into())],
                vec![Delivered("a".into())]
            )),
            FlowChangeKind::Gained
        );
        assert_eq!(
            classify(&fd(
                vec![Delivered("a".into())],
                vec![Delivered("c".into())]
            )),
            FlowChangeKind::Rerouted
        );
        assert_eq!(
            classify(&fd(vec![Delivered("a".into())], vec![Loop])),
            FlowChangeKind::LoopIntroduced
        );
        assert_eq!(
            classify(&fd(vec![Loop], vec![Blackhole("a".into())])),
            FlowChangeKind::LoopResolved
        );
        assert_eq!(
            classify(&fd(vec![Blackhole("a".into())], vec![Filtered("a".into())])),
            FlowChangeKind::Other
        );
    }

    #[test]
    fn render_mentions_key_numbers() {
        let mut diff = BehaviorDiff::default();
        diff.flows.push(fd(
            vec![Outcome::Delivered("a".into())],
            vec![Outcome::Loop],
        ));
        let text = render(&diff, 10);
        assert!(text.contains("LOOP+"));
        assert!(text.contains("affected flow classes: 1"));
    }
}
