//! The from-scratch baseline: the Batfish-style workflow of simulating
//! both snapshots completely and diffing the results. Identical output
//! granularity to [`crate::engine::DiffEngine`] so the two are directly
//! comparable — in benchmarks (the headline speedup) and in tests (exact
//! agreement, experiment E8).

use crate::engine::{BehaviorDiff, DiffStats, DnaError, FlowDiff};
use control_plane::{reference, CpError, FibEntry, RibEntry};
use data_plane::{compile_acl, AtomRegistry, DataPlane};
use ddflow::Diff;
use net_model::{ChangeSet, Snapshot};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// From-scratch change-impact analysis: simulate before and after, diff.
pub struct ScratchDiffer {
    snapshot: Snapshot,
    /// Worker count for each full simulation's baseline data-plane load.
    shards: usize,
}

fn simulate_full(
    snap: &Snapshot,
    shards: usize,
) -> Result<(reference::SimResult, DataPlane), DnaError> {
    let sim = reference::simulate(snap)
        .map_err(|e| DnaError::ControlPlane(CpError::Divergence(e.to_string())))?;
    let mut dp = DataPlane::new(snap);
    let fib: Vec<_> = sim.fib.iter().cloned().map(|e| (e, 1)).collect();
    dp.load_baseline(&fib, shards);
    Ok((sim, dp))
}

impl ScratchDiffer {
    /// Creates the baseline differ over a base snapshot.
    pub fn new(snapshot: Snapshot) -> Result<Self, DnaError> {
        Self::with_shards(snapshot, 1)
    }

    /// [`ScratchDiffer::new`] with the per-epoch full simulations'
    /// baseline reachability sweeps fanned out over `shards` workers
    /// (the from-scratch twin of [`crate::DiffEngine::with_shards`];
    /// reports are identical for every shard count).
    pub fn with_shards(snapshot: Snapshot, shards: usize) -> Result<Self, DnaError> {
        let problems = snapshot.validate();
        if !problems.is_empty() {
            return Err(DnaError::InvalidSnapshot(format!("{:?}", problems[0])));
        }
        Ok(ScratchDiffer {
            snapshot,
            shards: shards.max(1),
        })
    }

    /// The current snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Analyzes a change set by full re-simulation of both snapshots.
    pub fn apply(&mut self, changes: &ChangeSet) -> Result<BehaviorDiff, DnaError> {
        let t0 = Instant::now();
        let after_snap = changes
            .apply(&self.snapshot)
            .map_err(|e| DnaError::ControlPlane(CpError::Apply(e)))?;
        let (before_sim, before_dp) = simulate_full(&self.snapshot, self.shards)?;
        let cp_mid = Instant::now();
        let (after_sim, after_dp) = simulate_full(&after_snap, self.shards)?;
        // Control-plane diffs (set difference on canonical entries).
        let rib = set_diff(&before_sim.rib, &after_sim.rib);
        let fib = set_diff(&before_sim.fib, &after_sim.fib);
        // Reachability diffs at the finest common refinement of the two
        // partitions: a probe per atom of the union of both sides'
        // predicates (FIB prefixes plus bound ACLs). This is exactly the
        // partition [`crate::engine::DiffEngine`] reports deltas on — its
        // verifier holds old and new predicates simultaneously while
        // diffing — so the analyzers' reports are byte-identical,
        // including header-space descriptions. Probing only one side's
        // atoms would under-sample: a class that exists only before the
        // change (e.g. a withdrawn /31) is invisible in the after
        // partition, yet its flows may be the very ones that changed.
        let mut reg = AtomRegistry::new();
        for sim in [&before_sim, &after_sim] {
            for e in &sim.fib {
                let pset = reg.arena.dst_prefix(e.prefix);
                let _ = reg.acquire(pset);
            }
        }
        for snap in [&self.snapshot, &after_snap] {
            for dc in snap.devices.values() {
                for ic in dc.interfaces.values() {
                    for name in [&ic.acl_in, &ic.acl_out].into_iter().flatten() {
                        let acl = dc.acls.get(name).cloned().unwrap_or_default();
                        let pset = compile_acl(&mut reg.arena, &acl);
                        let _ = reg.acquire(pset);
                    }
                }
            }
        }
        let mut flows = Vec::new();
        let atoms: Vec<_> = reg.atom_ids().collect();
        for atom in atoms {
            let pset = reg.atom_pset(atom);
            let Some(f) = reg.arena.sample(pset) else {
                continue;
            };
            let mut headers: Option<Vec<String>> = None;
            for dev in after_snap.devices.keys() {
                let b = before_dp.query(dev, &f);
                let a = after_dp.query(dev, &f);
                if b != a {
                    let headers = headers
                        .get_or_insert_with(|| reg.arena.describe(pset, 4))
                        .clone();
                    flows.push(FlowDiff {
                        src: dev.clone(),
                        headers,
                        example: f,
                        before: b,
                        after: a,
                    });
                }
            }
        }
        self.snapshot = after_snap;
        Ok(BehaviorDiff {
            rib,
            fib,
            flows,
            stats: DiffStats {
                cp_time: cp_mid - t0,
                dp_time: t0.elapsed() - (cp_mid - t0),
                total_time: t0.elapsed(),
                cp_tuples: 0,
                nodes_skipped: 0,
                dirty_classes: 0,
            },
        })
    }

    /// Current FIB (full simulation of the current snapshot).
    pub fn fib(&self) -> Result<Vec<FibEntry>, DnaError> {
        let sim = reference::simulate(&self.snapshot)
            .map_err(|e| DnaError::ControlPlane(CpError::Divergence(e.to_string())))?;
        Ok(sim.fib.into_iter().collect())
    }

    /// Current RIB (full simulation of the current snapshot).
    pub fn rib(&self) -> Result<Vec<RibEntry>, DnaError> {
        let sim = reference::simulate(&self.snapshot)
            .map_err(|e| DnaError::ControlPlane(CpError::Divergence(e.to_string())))?;
        Ok(sim.rib.into_iter().collect())
    }
}

fn set_diff<T: Clone + Ord>(before: &BTreeSet<T>, after: &BTreeSet<T>) -> Vec<(T, Diff)> {
    let mut counts: BTreeMap<&T, Diff> = BTreeMap::new();
    for e in after {
        *counts.entry(e).or_insert(0) += 1;
    }
    for e in before {
        *counts.entry(e).or_insert(0) -= 1;
    }
    counts
        .into_iter()
        .filter(|(_, d)| *d != 0)
        .map(|(e, d)| (e.clone(), d))
        .collect()
}
