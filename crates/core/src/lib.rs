//! # dna-core — Differential Network Analysis
//!
//! The end-to-end system of the reproduction: given a network
//! [`net_model::Snapshot`] and a stream of [`net_model::ChangeSet`]s,
//! report — *incrementally* — exactly how each change affects network
//! behavior: which routes move ([`control_plane::RibEntry`]), which
//! forwarding entries change ([`control_plane::FibEntry`]), and which
//! flows gain, lose or reroute end-to-end reachability ([`FlowDiff`]).
//!
//! Two analyzers with identical outputs:
//!
//! * [`DiffEngine`] — the differential pipeline (incremental Datalog
//!   control-plane simulation feeding an incremental packet-equivalence-
//!   class verifier);
//! * [`ScratchDiffer`] — the from-scratch baseline (simulate both
//!   snapshots fully and diff), the state of practice the paper improves
//!   on.
//!
//! ```
//! use dna_core::{DiffEngine, report};
//! use net_model::{Change, ChangeSet, NetBuilder};
//!
//! let snap = NetBuilder::new()
//!     .router("r1").iface("r1", "eth0", "10.0.0.1/31")
//!     .iface("r1", "lan", "192.168.1.1/24")
//!     .router("r2").iface("r2", "eth0", "10.0.0.0/31")
//!     .link("r1", "eth0", "r2", "eth0")
//!     .ospf("r1", "eth0", 1).ospf("r2", "eth0", 1)
//!     .ospf_passive("r1", "lan", 1)
//!     .build();
//! let link = snap.links[0].clone();
//! let mut engine = DiffEngine::new(snap).unwrap();
//! let diff = engine
//!     .apply(&ChangeSet::single(Change::LinkDown(link)))
//!     .unwrap();
//! assert!(!diff.is_noop());
//! println!("{}", report::render(&diff, 10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod replay;
pub mod report;

pub use baseline::ScratchDiffer;
pub use engine::{BehaviorDiff, DiffEngine, DiffStats, DnaError, EngineView, FlowDiff};
pub use replay::{
    sorted_flows, EpochOutcome, EpochStats, ReplayCheckpoint, ReplayMode, ReplaySession,
    ReplayTotals, DEFAULT_STATS_RETENTION,
};
pub use report::{classify, render, summarize, FlowChangeKind, Summary};
