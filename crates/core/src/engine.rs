//! The end-to-end differential analysis engine.
//!
//! [`DiffEngine`] chains the two incremental stages: a [`CpEngine`]
//! (differential control-plane simulation: changes → RIB/FIB deltas) and a
//! [`DataPlane`] verifier (FIB/ACL deltas → reachability deltas). One
//! [`DiffEngine::apply`] call answers the operator's question directly:
//! *exactly which flows behave differently after this change?*

use control_plane::{CpEngine, CpError, FibEntry, RibEntry};
use data_plane::{DataPlane, Dir, DpUpdate, FilterChange, Outcome, ReachDelta};
use ddflow::Diff;
use net_model::{Change, ChangeSet, Flow, ShardPlan, Snapshot};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Error from the differential pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DnaError {
    /// Control-plane stage failed (bad change or non-convergence).
    ControlPlane(CpError),
    /// The base snapshot failed validation.
    InvalidSnapshot(String),
}

impl std::fmt::Display for DnaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnaError::ControlPlane(e) => write!(f, "control plane: {e}"),
            DnaError::InvalidSnapshot(s) => write!(f, "invalid snapshot: {s}"),
        }
    }
}

impl std::error::Error for DnaError {}

impl From<CpError> for DnaError {
    fn from(e: CpError) -> Self {
        DnaError::ControlPlane(e)
    }
}

/// One reachability difference, decorated for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowDiff {
    /// Source device.
    pub src: String,
    /// Human-readable header-space description of the affected class.
    pub headers: Vec<String>,
    /// A concrete example packet of the class.
    pub example: Flow,
    /// Outcomes before the change.
    pub before: BTreeSet<Outcome>,
    /// Outcomes after the change.
    pub after: BTreeSet<Outcome>,
}

/// Stage timings and work counters for one differential analysis.
#[derive(Debug, Clone, Default)]
pub struct DiffStats {
    /// Wall-clock spent in the differential control-plane stage.
    pub cp_time: Duration,
    /// Wall-clock spent in the differential data-plane stage.
    pub dp_time: Duration,
    /// Total wall-clock for the apply call.
    pub total_time: Duration,
    /// Tuples processed by the dataflow engine.
    pub cp_tuples: usize,
    /// Scheduled dataflow operators skipped because no input port received
    /// a batch this epoch (dirty-node scheduling in `ddflow`).
    pub nodes_skipped: usize,
    /// Packet classes whose reachability was recomputed.
    pub dirty_classes: usize,
}

/// Everything that changed, across all three layers.
#[derive(Debug, Clone, Default)]
pub struct BehaviorDiff {
    /// Route-level changes (+1 installed / -1 withdrawn).
    pub rib: Vec<(RibEntry, Diff)>,
    /// Forwarding-entry changes.
    pub fib: Vec<(FibEntry, Diff)>,
    /// End-to-end reachability changes.
    pub flows: Vec<FlowDiff>,
    /// Stage statistics.
    pub stats: DiffStats,
}

impl BehaviorDiff {
    /// Whether the change had any observable effect.
    pub fn is_noop(&self) -> bool {
        self.rib.is_empty() && self.fib.is_empty() && self.flows.is_empty()
    }
}

/// The incremental change-impact engine (the paper's system).
pub struct DiffEngine {
    cp: CpEngine,
    dp: DataPlane,
}

impl DiffEngine {
    /// Builds the engine: simulates the base snapshot's control plane,
    /// loads the resulting data plane, computes baseline reachability.
    /// Single-shard bring-up; see [`DiffEngine::with_shards`].
    pub fn new(snapshot: Snapshot) -> Result<Self, DnaError> {
        Self::with_shards(snapshot, 1)
    }

    /// [`DiffEngine::new`] through the sharded init pipeline: the
    /// snapshot is partitioned into `shards` device shards
    /// ([`ShardPlan::partition`]); per-shard fact encoding runs on one
    /// scoped worker thread each (overlapped with rule compilation),
    /// one merged dataflow commit produces the control-plane fixpoint,
    /// and the baseline data-plane load fans its reachability sweep out
    /// over the same number of workers. Observationally identical to
    /// the single-threaded path for every shard count.
    pub fn with_shards(snapshot: Snapshot, shards: usize) -> Result<Self, DnaError> {
        let problems = snapshot.validate();
        if !problems.is_empty() {
            return Err(DnaError::InvalidSnapshot(format!("{:?}", problems[0])));
        }
        let plan = ShardPlan::partition(&snapshot, shards);
        let mut cp = CpEngine::sharded(snapshot.clone(), ddflow::Config::default(), &plan)?;
        cp.drain_initial();
        let mut dp = DataPlane::new(&snapshot);
        let fib: Vec<(FibEntry, Diff)> = cp.fib().into_iter().map(|e| (e, 1)).collect();
        dp.load_baseline(&fib, plan.shard_count());
        Ok(DiffEngine { cp, dp })
    }

    /// The current snapshot (base plus every applied change set).
    pub fn snapshot(&self) -> &Snapshot {
        self.cp.snapshot()
    }

    /// Applies a change set incrementally and reports everything that
    /// changed. On error nothing is applied.
    pub fn apply(&mut self, changes: &ChangeSet) -> Result<BehaviorDiff, DnaError> {
        let t0 = Instant::now();
        let cp_delta = self.cp.apply(changes)?;
        let cp_time = t0.elapsed();
        let t1 = Instant::now();
        let filters = filter_changes(self.cp.snapshot(), changes);
        // Deferred release keeps retiring atoms alive (and the partition at
        // its finest) until the deltas are decorated; see `apply_deferred`.
        let (reach, pending) = self.dp.apply_deferred(&DpUpdate {
            fib: cp_delta.fib.clone(),
            filters,
        });
        let dp_time = t1.elapsed();
        let flows = self.decorate(reach);
        self.dp.finish_update(pending);
        Ok(BehaviorDiff {
            rib: cp_delta.rib,
            fib: cp_delta.fib,
            stats: DiffStats {
                cp_time,
                dp_time,
                total_time: t0.elapsed(),
                cp_tuples: cp_delta.stats.tuples_processed,
                nodes_skipped: cp_delta.stats.nodes_skipped,
                dirty_classes: flows
                    .iter()
                    .map(|f| (&f.headers, &f.example))
                    .collect::<BTreeSet<_>>()
                    .len(),
            },
            flows,
        })
    }

    fn decorate(&self, reach: Vec<ReachDelta>) -> Vec<FlowDiff> {
        reach
            .into_iter()
            .filter_map(|d| {
                let example = self.dp.sample_atom(d.atom)?;
                Some(FlowDiff {
                    src: d.src,
                    headers: self.dp.describe_atom(d.atom, 4),
                    example,
                    before: d.before,
                    after: d.after,
                })
            })
            .collect()
    }

    /// Current full FIB (decoded, sorted).
    pub fn fib(&self) -> Vec<FibEntry> {
        self.cp.fib()
    }

    /// Current full RIB (decoded, sorted).
    pub fn rib(&self) -> Vec<RibEntry> {
        self.cp.rib()
    }

    /// Outcomes for a concrete flow injected at `src`, on current state.
    pub fn query(&self, src: &str, flow: &Flow) -> BTreeSet<Outcome> {
        self.dp.query(src, flow)
    }

    /// One sample flow per live packet class (probe set for equivalence
    /// testing against the from-scratch baseline).
    pub fn probe_flows(&self) -> Vec<Flow> {
        self.dp
            .atoms()
            .into_iter()
            .filter_map(|a| self.dp.sample_atom(a))
            .collect()
    }

    /// Number of live packet equivalence classes.
    pub fn class_count(&self) -> usize {
        self.dp.atom_count()
    }

    /// Working-set counters `(engine tuples, atoms, pset nodes)` for the
    /// memory study (E6).
    pub fn state_size(&self) -> (usize, usize, usize) {
        (
            self.cp.state_tuples(),
            self.dp.atom_count(),
            self.dp.pset_nodes(),
        )
    }

    /// Captures an immutable [`EngineView`] of the current state: the
    /// reachability view, the decoded FIB and the working-set counters.
    /// The view is fully owned data — move it to reader threads and keep
    /// answering queries while the engine applies further epochs.
    pub fn view(&self) -> EngineView {
        EngineView {
            reach: self.dp.reach_view(),
            fib: self.cp.fib(),
            state: self.state_size(),
        }
    }
}

/// An immutable queryable view of a [`DiffEngine`]'s state at one epoch
/// boundary, captured by [`DiffEngine::view`]. Reach queries against the
/// view return exactly what [`DiffEngine::query`] answered at capture
/// time; the engine is free to mutate concurrently.
#[derive(Clone)]
pub struct EngineView {
    reach: data_plane::ReachView,
    fib: Vec<FibEntry>,
    state: (usize, usize, usize),
}

impl EngineView {
    /// Outcomes for a concrete flow injected at `src`, on captured state.
    pub fn query(&self, src: &str, flow: &Flow) -> BTreeSet<Outcome> {
        self.reach.query(src, flow)
    }

    /// The captured full FIB (decoded, sorted).
    pub fn fib(&self) -> &[FibEntry] {
        &self.fib
    }

    /// Number of packet equivalence classes at capture time.
    pub fn class_count(&self) -> usize {
        self.reach.class_count()
    }

    /// Working-set counters `(engine tuples, atoms, pset nodes)` at
    /// capture time.
    pub fn state_size(&self) -> (usize, usize, usize) {
        self.state
    }
}

/// Maps ACL-affecting changes to resolved filter rebindings, evaluated
/// against the post-change snapshot (CP changes were already translated by
/// the control-plane stage; this covers the data-plane-only taxonomy).
fn filter_changes(after: &Snapshot, changes: &ChangeSet) -> Vec<FilterChange> {
    let mut out: Vec<FilterChange> = Vec::new();
    fn push_bindings_of_acl(
        out: &mut Vec<FilterChange>,
        after: &Snapshot,
        device: &String,
        acl_name: &String,
    ) {
        let Some(dc) = after.devices.get(device) else {
            return;
        };
        let contents = dc.acls.get(acl_name).cloned().unwrap_or_default();
        for (ifname, ic) in &dc.interfaces {
            for (dir, bound) in [(Dir::In, &ic.acl_in), (Dir::Out, &ic.acl_out)] {
                if bound.as_deref() == Some(acl_name.as_str()) {
                    out.push(FilterChange {
                        device: device.clone(),
                        iface: ifname.clone(),
                        dir,
                        acl: Some(contents.clone()),
                    });
                }
            }
        }
    }
    for change in &changes.changes {
        match change {
            Change::AclEntryAdd { device, acl, .. }
            | Change::AclEntryRemove { device, acl, .. } => {
                push_bindings_of_acl(&mut out, after, device, acl);
            }
            Change::SetAclIn { device, iface, acl } => {
                let contents = acl.as_ref().map(|name| {
                    after
                        .devices
                        .get(device)
                        .and_then(|dc| dc.acls.get(name))
                        .cloned()
                        .unwrap_or_default()
                });
                out.push(FilterChange {
                    device: device.clone(),
                    iface: iface.clone(),
                    dir: Dir::In,
                    acl: contents,
                });
            }
            Change::SetAclOut { device, iface, acl } => {
                let contents = acl.as_ref().map(|name| {
                    after
                        .devices
                        .get(device)
                        .and_then(|dc| dc.acls.get(name))
                        .cloned()
                        .unwrap_or_default()
                });
                out.push(FilterChange {
                    device: device.clone(),
                    iface: iface.clone(),
                    dir: Dir::Out,
                    acl: contents,
                });
            }
            _ => {}
        }
    }
    out
}
