//! BGP policy disputes: configurations whose best-path iteration has no
//! stable fixpoint. Both simulators must *detect* this (bounded iteration)
//! instead of hanging — the safety property the engine's divergence guard
//! exists for. The gadget is the classic BAD GADGET / DISAGREE instability:
//! three ASes in a cycle, each preferring the route through its clockwise
//! neighbor over its own direct route.

use control_plane::{reference, CpEngine, CpError};
use ddflow::Config;
use net_model::route::{RmAction, RmMatch, RmSet, RouteMapClause};
use net_model::{pfx, NetBuilder, RouteMap, Snapshot};

/// Prefer routes whose AS path goes through `via` (local-pref 200),
/// otherwise accept at the default preference.
fn prefer_via(via: u32) -> RouteMap {
    let mut rm = RouteMap::default();
    rm.add(RouteMapClause {
        seq: 10,
        matches: vec![RmMatch::AsPathContains(via)],
        action: RmAction::Permit,
        sets: vec![RmSet::LocalPref(200)],
    });
    rm.add(RouteMapClause {
        seq: 20,
        matches: vec![],
        action: RmAction::Permit,
        sets: vec![],
    });
    rm
}

/// Three ASes (65001..65003) in a triangle around an origin AS 65000 that
/// announces 99.99.0.0/16. Each transit AS prefers the path through its
/// clockwise neighbor — the classic oscillation.
fn bad_gadget() -> Snapshot {
    let mut b = NetBuilder::new()
        // Origin.
        .router("r0")
        .iface("r0", "lan", "99.99.0.1/16")
        .bgp("r0", 65000, 100)
        .network("r0", pfx("99.99.0.0/16"));
    // Triangle routers.
    for i in 1..=3u32 {
        let name = format!("r{i}");
        b = b.router(&name).bgp(&name, 65000 + i, i);
    }
    // Spokes to the origin.
    let spokes = [
        ("r1", "10.0.1.1/31", "10.0.1.0/31"),
        ("r2", "10.0.2.1/31", "10.0.2.0/31"),
        ("r3", "10.0.3.1/31", "10.0.3.0/31"),
    ];
    for (i, (r, mine, theirs)) in spokes.iter().enumerate() {
        let o_if = format!("to{}", i + 1);
        b = b
            .iface(r, "to0", mine)
            .iface("r0", &o_if, theirs)
            .link(r, "to0", "r0", &o_if)
            .neighbor(r, &theirs[..theirs.len() - 3], 65000, None, None)
            .neighbor(
                "r0",
                &mine[..mine.len() - 3],
                65000 + i as u32 + 1,
                None,
                None,
            );
    }
    // The ring r1->r2->r3->r1, each preferring its clockwise neighbor.
    let ring = [
        ("r1", "r2", "10.1.12.1/31", "10.1.12.0/31", 65002u32),
        ("r2", "r3", "10.1.23.1/31", "10.1.23.0/31", 65003),
        ("r3", "r1", "10.1.31.1/31", "10.1.31.0/31", 65001),
    ];
    for (i, (a, c, a_addr, c_addr, c_asn)) in ring.iter().enumerate() {
        let (ia, ic) = (format!("ring{i}a"), format!("ring{i}b"));
        let a_asn = 65001 + "r1r2r3".find(&a[..]).map(|p| p / 2).unwrap_or(0) as u32;
        let rm_name = format!("prefer_cw_{a}");
        b = b
            .iface(a, &ia, a_addr)
            .iface(c, &ic, c_addr)
            .link(a, &ia, c, &ic)
            .route_map(a, &rm_name, prefer_via(*c_asn))
            .neighbor(a, &c_addr[..c_addr.len() - 3], *c_asn, Some(&rm_name), None)
            .neighbor(c, &a_addr[..a_addr.len() - 3], a_asn, None, None);
    }
    b.build()
}

#[test]
fn gadget_snapshot_is_well_formed() {
    let snap = bad_gadget();
    assert!(snap.validate().is_empty(), "{:?}", snap.validate());
}

#[test]
fn reference_detects_the_dispute_or_converges_identically() {
    let snap = bad_gadget();
    let reference_result = reference::simulate_bounded(&snap, 200);
    let engine_result = CpEngine::with_config(
        snap,
        Config {
            max_iterations: 200,
        },
    );
    match (&reference_result, &engine_result) {
        // The expected outcome for the classic gadget: both sides give up.
        (Err(reference::SimError::BgpDivergence { .. }), Err(CpError::Divergence(_))) => {}
        // If a particular wiring happens to stabilize, both must agree.
        (Ok(sim), Ok(_)) => {
            let eng = engine_result.as_ref().unwrap();
            assert_eq!(
                eng.fib(),
                sim.fib.iter().cloned().collect::<Vec<_>>(),
                "both converged but to different answers"
            );
        }
        (r, e) => panic!(
            "divergence detection disagrees: reference={:?} engine={:?}",
            r.as_ref().map(|_| "converged"),
            e.as_ref().map(|_| "converged")
        ),
    }
}

#[test]
fn divergence_error_is_reported_not_hung() {
    use std::time::Instant;
    let snap = bad_gadget();
    let t = Instant::now();
    let _ = CpEngine::with_config(snap, Config { max_iterations: 64 });
    // Bounded iteration must return promptly even when oscillating.
    assert!(
        t.elapsed() < std::time::Duration::from_secs(30),
        "divergence guard too slow: {:?}",
        t.elapsed()
    );
}
