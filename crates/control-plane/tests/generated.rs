//! Randomized differential-vs-reference equivalence on generated
//! topologies: fat-trees (eBGP and OSPF) and WAN meshes under long, mixed
//! change sequences. Catches interaction bugs the handcrafted scenarios
//! miss.

use control_plane::{reference, CpEngine};
use net_model::Snapshot;
use topo_gen::{fat_tree, wan, Routing, ScenarioGen, ScenarioKind, WanShape, ALL_SCENARIOS};

fn run_sequence(snap: Snapshot, seed: u64, steps: usize, kinds: &[ScenarioKind]) {
    let mut eng = CpEngine::new(snap.clone()).expect("engine builds");
    let sim = reference::simulate(&snap).expect("reference converges");
    assert_eq!(
        eng.rib(),
        sim.rib.iter().cloned().collect::<Vec<_>>(),
        "initial RIB"
    );
    assert_eq!(
        eng.fib(),
        sim.fib.iter().cloned().collect::<Vec<_>>(),
        "initial FIB"
    );
    let mut gen = ScenarioGen::new(seed);
    let seq = gen.sequence(&snap, kinds, steps);
    assert!(!seq.is_empty());
    let mut cur = snap;
    for (i, cs) in seq.into_iter().enumerate() {
        eng.apply(&cs).expect("incremental apply");
        cur = cs.apply(&cur).expect("model apply");
        let sim = reference::simulate(&cur).expect("reference converges");
        assert_eq!(
            eng.rib(),
            sim.rib.iter().cloned().collect::<Vec<_>>(),
            "RIB diverged at step {i}: {:?}",
            cs.changes.iter().map(|c| c.to_string()).collect::<Vec<_>>()
        );
        assert_eq!(
            eng.fib(),
            sim.fib.iter().cloned().collect::<Vec<_>>(),
            "FIB diverged at step {i}"
        );
    }
}

#[test]
fn fat_tree_ebgp_under_mixed_churn() {
    let ft = fat_tree(4, Routing::Ebgp);
    run_sequence(ft.snapshot, 11, 30, ALL_SCENARIOS);
}

#[test]
fn fat_tree_ospf_under_mixed_churn() {
    let ft = fat_tree(4, Routing::Ospf);
    run_sequence(ft.snapshot, 13, 30, ALL_SCENARIOS);
}

#[test]
fn wan_mesh_under_failure_and_cost_churn() {
    let w = wan(12, WanShape::Mesh { extra: 6 }, 10, 17);
    run_sequence(
        w.snapshot,
        19,
        30,
        &[
            ScenarioKind::LinkFailure,
            ScenarioKind::LinkRecovery,
            ScenarioKind::OspfCostChange,
            ScenarioKind::DeviceFailure,
            ScenarioKind::DeviceRecovery,
            ScenarioKind::StaticAdd,
            ScenarioKind::StaticRemove,
        ],
    );
}

#[test]
fn wan_ring_sequential_failures_partition_and_heal() {
    // A ring can be partitioned by two failures; exercise that regime
    // deterministically.
    let w = wan(8, WanShape::Ring, 5, 23);
    let mut eng = CpEngine::new(w.snapshot.clone()).unwrap();
    let mut cur = w.snapshot.clone();
    let l1 = cur.links[0].clone();
    let l2 = cur.links[4].clone();
    for change in [
        net_model::Change::LinkDown(l1.clone()),
        net_model::Change::LinkDown(l2.clone()),
        net_model::Change::LinkUp(l1),
        net_model::Change::LinkUp(l2),
    ] {
        let cs = net_model::ChangeSet::single(change);
        eng.apply(&cs).unwrap();
        cur = cs.apply(&cur).unwrap();
        let sim = reference::simulate(&cur).unwrap();
        assert_eq!(eng.fib(), sim.fib.iter().cloned().collect::<Vec<_>>());
    }
}

#[test]
fn larger_fat_tree_initial_state_matches() {
    // One-shot check at k=6 (45 devices) to cover deeper propagation.
    let ft = fat_tree(6, Routing::Ebgp);
    let eng = CpEngine::new(ft.snapshot.clone()).unwrap();
    let sim = reference::simulate(&ft.snapshot).unwrap();
    assert_eq!(eng.rib(), sim.rib.iter().cloned().collect::<Vec<_>>());
    assert_eq!(eng.fib(), sim.fib.iter().cloned().collect::<Vec<_>>());
    // Every edge switch should know every server subnet.
    let fib = eng.fib();
    for (e, _) in &ft.server_subnets {
        let known = ft
            .server_subnets
            .iter()
            .filter(|(owner, p)| owner == e || fib.iter().any(|f| &f.device == e && f.prefix == *p))
            .count();
        assert_eq!(known, ft.server_subnets.len(), "{e} missing subnets");
    }
}
