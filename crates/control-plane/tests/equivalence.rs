//! Differential-vs-reference equivalence: the differential engine must
//! produce byte-identical RIBs and FIBs to the from-scratch simulator,
//! initially and after every change in a sequence. This is the central
//! soundness property of the reproduction.

use control_plane::{reference, CpEngine, FibAction, FibEntry, NextDevice, Proto, RibEntry};
use net_model::route::{RmAction, RmSet, RouteMapClause};
use net_model::{
    ip, pfx, Change, ChangeSet, Endpoint, ExternalRoute, Link, NetBuilder, RouteAttrs, RouteMap,
    Snapshot,
};

fn link(d1: &str, i1: &str, d2: &str, i2: &str) -> Link {
    Link::new(Endpoint::new(d1, i1), Endpoint::new(d2, i2))
}

/// Asserts engine state equals the reference simulation of `snap`.
fn assert_matches_reference(eng: &CpEngine, snap: &Snapshot, ctx: &str) {
    let sim = reference::simulate(snap).expect("reference converges");
    let ref_rib: Vec<RibEntry> = sim.rib.iter().cloned().collect();
    let ref_fib: Vec<FibEntry> = sim.fib.iter().cloned().collect();
    assert_eq!(eng.rib(), ref_rib, "RIB mismatch: {ctx}");
    assert_eq!(eng.fib(), ref_fib, "FIB mismatch: {ctx}");
}

/// Drives the engine through `steps` change sets, checking equivalence with
/// the reference simulator after construction and after every step, and
/// checking that the reported FIB deltas are exact.
fn check(snap: Snapshot, steps: Vec<ChangeSet>) {
    assert!(
        snap.validate().is_empty(),
        "test snapshot invalid: {:?}",
        snap.validate()
    );
    let mut eng = CpEngine::new(snap.clone()).expect("engine builds");
    assert_matches_reference(&eng, &snap, "initial");
    eng.drain_initial();
    let mut cur = snap;
    for (i, cs) in steps.into_iter().enumerate() {
        let prev_fib = eng.fib();
        let delta = eng.apply(&cs).expect("apply succeeds");
        cur = cs.apply(&cur).expect("model apply succeeds");
        let ctx = format!(
            "after step {i}: {:?}",
            cs.changes.iter().map(|c| c.to_string()).collect::<Vec<_>>()
        );
        assert_matches_reference(&eng, &cur, &ctx);
        // The reported delta must transform the previous FIB exactly.
        let mut fib: std::collections::BTreeMap<FibEntry, isize> =
            prev_fib.into_iter().map(|e| (e, 1)).collect();
        for (e, d) in &delta.fib {
            *fib.entry(e.clone()).or_insert(0) += d;
        }
        let reconstructed: Vec<FibEntry> = fib
            .into_iter()
            .filter_map(|(e, c)| {
                assert!((0..=1).contains(&c), "non-set FIB multiplicity: {ctx}");
                (c == 1).then_some(e)
            })
            .collect();
        assert_eq!(reconstructed, eng.fib(), "FIB delta inexact: {ctx}");
    }
}

// ------------------------------------------------------------ connectivity

fn two_routers() -> Snapshot {
    NetBuilder::new()
        .router("r1")
        .iface("r1", "eth0", "10.0.0.1/31")
        .iface("r1", "lan", "192.168.1.1/24")
        .router("r2")
        .iface("r2", "eth0", "10.0.0.0/31")
        .iface("r2", "lan", "192.168.2.1/24")
        .link("r1", "eth0", "r2", "eth0")
        .build()
}

#[test]
fn connected_routes_only() {
    check(two_routers(), vec![]);
}

#[test]
fn static_routes_resolve_and_fail_over() {
    let snap = NetBuilder::new()
        .router("r1")
        .iface("r1", "eth0", "10.0.0.1/31")
        .iface("r1", "lan", "192.168.1.1/24")
        .router("r2")
        .iface("r2", "eth0", "10.0.0.0/31")
        .link("r1", "eth0", "r2", "eth0")
        .static_route("r1", pfx("0.0.0.0/0"), "10.0.0.0")
        .static_discard("r2", pfx("10.99.0.0/16"))
        .build();
    check(
        snap,
        vec![
            // Fails the static's resolution: route must withdraw.
            ChangeSet::single(Change::LinkDown(link("r1", "eth0", "r2", "eth0"))),
            // And reappear on recovery.
            ChangeSet::single(Change::LinkUp(link("r1", "eth0", "r2", "eth0"))),
        ],
    );
}

#[test]
fn static_to_host_subnet_exits_external() {
    // Next hop inside a host-facing subnet with no adjacent device.
    let snap = NetBuilder::new()
        .router("r1")
        .iface("r1", "lan", "192.168.1.1/24")
        .static_route("r1", pfx("8.8.0.0/16"), "192.168.1.254")
        .build();
    let eng = CpEngine::new(snap.clone()).unwrap();
    assert_matches_reference(&eng, &snap, "host-subnet static");
    let fib = eng.fib();
    assert!(fib.iter().any(|e| e.prefix == pfx("8.8.0.0/16")
        && matches!(
            &e.action,
            FibAction::Forward {
                next: NextDevice::External,
                ..
            }
        )));
}

// ------------------------------------------------------------------- OSPF

/// Triangle with asymmetric costs; r3 advertises a LAN.
fn ospf_triangle() -> Snapshot {
    NetBuilder::new()
        .router("r1")
        .iface("r1", "to2", "10.0.12.1/31")
        .iface("r1", "to3", "10.0.13.1/31")
        .router("r2")
        .iface("r2", "to1", "10.0.12.0/31")
        .iface("r2", "to3", "10.0.23.1/31")
        .router("r3")
        .iface("r3", "to1", "10.0.13.0/31")
        .iface("r3", "to2", "10.0.23.0/31")
        .iface("r3", "lan", "192.168.3.1/24")
        .link("r1", "to2", "r2", "to1")
        .link("r1", "to3", "r3", "to1")
        .link("r2", "to3", "r3", "to2")
        .ospf("r1", "to2", 1)
        .ospf("r1", "to3", 10)
        .ospf("r2", "to1", 1)
        .ospf("r2", "to3", 1)
        .ospf("r3", "to1", 10)
        .ospf("r3", "to2", 1)
        .ospf_passive("r3", "lan", 1)
        .build()
}

#[test]
fn ospf_prefers_cheaper_path_and_reroutes_on_failure() {
    let snap = ospf_triangle();
    // Sanity on the initial state: r1 reaches r3's LAN via r2 (cost 1+1+1)
    // rather than directly (cost 10+1).
    let eng = CpEngine::new(snap.clone()).unwrap();
    let fib = eng.fib();
    let via = fib
        .iter()
        .find(|e| e.device == "r1" && e.prefix == pfx("192.168.3.0/24"))
        .expect("route to LAN");
    assert_eq!(
        via.action,
        FibAction::Forward {
            iface: "to2".into(),
            next: NextDevice::Device("r2".into())
        }
    );
    check(
        snap,
        vec![
            // Failing r1-r2 forces the expensive direct path.
            ChangeSet::single(Change::LinkDown(link("r1", "to2", "r2", "to1"))),
            // Recovery restores it.
            ChangeSet::single(Change::LinkUp(link("r1", "to2", "r2", "to1"))),
            // Cost change flips the preference without any failure.
            ChangeSet::single(Change::SetOspfCost {
                device: "r1".into(),
                iface: "to3".into(),
                cost: 1,
            }),
        ],
    );
}

#[test]
fn ospf_ecmp_produces_multiple_fib_entries() {
    // Square: r1 reaches r4's LAN over two equal-cost paths.
    let snap = NetBuilder::new()
        .router("r1")
        .iface("r1", "a", "10.0.1.1/31")
        .iface("r1", "b", "10.0.2.1/31")
        .router("r2")
        .iface("r2", "a", "10.0.1.0/31")
        .iface("r2", "c", "10.0.3.1/31")
        .router("r3")
        .iface("r3", "b", "10.0.2.0/31")
        .iface("r3", "d", "10.0.4.1/31")
        .router("r4")
        .iface("r4", "c", "10.0.3.0/31")
        .iface("r4", "d", "10.0.4.0/31")
        .iface("r4", "lan", "192.168.4.1/24")
        .link("r1", "a", "r2", "a")
        .link("r1", "b", "r3", "b")
        .link("r2", "c", "r4", "c")
        .link("r3", "d", "r4", "d")
        .ospf("r1", "a", 1)
        .ospf("r1", "b", 1)
        .ospf("r2", "a", 1)
        .ospf("r2", "c", 1)
        .ospf("r3", "b", 1)
        .ospf("r3", "d", 1)
        .ospf("r4", "c", 1)
        .ospf("r4", "d", 1)
        .ospf_passive("r4", "lan", 1)
        .build();
    let eng = CpEngine::new(snap.clone()).unwrap();
    let fib = eng.fib();
    let to_lan: Vec<_> = fib
        .iter()
        .filter(|e| e.device == "r1" && e.prefix == pfx("192.168.4.0/24"))
        .collect();
    assert_eq!(to_lan.len(), 2, "expected ECMP, got {to_lan:?}");
    check(
        snap,
        vec![
            // Losing one path degrades to a single next hop.
            ChangeSet::single(Change::LinkDown(link("r2", "c", "r4", "c"))),
            ChangeSet::single(Change::LinkUp(link("r2", "c", "r4", "c"))),
            // Device failure takes a whole side out.
            ChangeSet::single(Change::DeviceDown("r3".into())),
            ChangeSet::single(Change::DeviceUp("r3".into())),
        ],
    );
}

// -------------------------------------------------------------------- BGP

/// Three routers in distinct ASes in a line; r1 and r3 originate LANs.
fn ebgp_line() -> Snapshot {
    NetBuilder::new()
        .router("r1")
        .iface("r1", "to2", "10.0.12.1/31")
        .iface("r1", "lan", "192.168.1.1/24")
        .bgp("r1", 65001, 1)
        .neighbor("r1", "10.0.12.0", 65002, None, None)
        .network("r1", pfx("192.168.1.0/24"))
        .router("r2")
        .iface("r2", "to1", "10.0.12.0/31")
        .iface("r2", "to3", "10.0.23.1/31")
        .bgp("r2", 65002, 2)
        .neighbor("r2", "10.0.12.1", 65001, None, None)
        .neighbor("r2", "10.0.23.0", 65003, None, None)
        .router("r3")
        .iface("r3", "to2", "10.0.23.0/31")
        .iface("r3", "lan", "192.168.3.1/24")
        .bgp("r3", 65003, 3)
        .neighbor("r3", "10.0.23.1", 65002, None, None)
        .network("r3", pfx("192.168.3.0/24"))
        .link("r1", "to2", "r2", "to1")
        .link("r2", "to3", "r3", "to2")
        .build()
}

#[test]
fn ebgp_propagates_across_ases() {
    let snap = ebgp_line();
    let eng = CpEngine::new(snap.clone()).unwrap();
    assert_matches_reference(&eng, &snap, "ebgp line");
    // r1 learns r3's LAN through r2 (two eBGP hops).
    let fib = eng.fib();
    let e = fib
        .iter()
        .find(|e| e.device == "r1" && e.prefix == pfx("192.168.3.0/24"))
        .expect("cross-AS route");
    assert_eq!(
        e.action,
        FibAction::Forward {
            iface: "to2".into(),
            next: NextDevice::Device("r2".into())
        }
    );
    check(
        snap,
        vec![
            // Withdraw the origination: routes vanish everywhere.
            ChangeSet::single(Change::BgpNetworkRemove {
                device: "r3".into(),
                prefix: pfx("192.168.3.0/24"),
            }),
            ChangeSet::single(Change::BgpNetworkAdd {
                device: "r3".into(),
                prefix: pfx("192.168.3.0/24"),
            }),
            // Session loss on link failure.
            ChangeSet::single(Change::LinkDown(link("r2", "to3", "r3", "to2"))),
            ChangeSet::single(Change::LinkUp(link("r2", "to3", "r3", "to2"))),
        ],
    );
}

/// Diamond: r1 can reach r4's prefix via r2 or r3 (different ASes);
/// policies steer the choice.
fn ebgp_diamond() -> Snapshot {
    NetBuilder::new()
        .router("r1")
        .iface("r1", "to2", "10.0.12.1/31")
        .iface("r1", "to3", "10.0.13.1/31")
        .bgp("r1", 65001, 1)
        .neighbor("r1", "10.0.12.0", 65002, Some("prefer"), None)
        .neighbor("r1", "10.0.13.0", 65003, None, None)
        .router("r2")
        .iface("r2", "to1", "10.0.12.0/31")
        .iface("r2", "to4", "10.0.24.1/31")
        .bgp("r2", 65002, 2)
        .neighbor("r2", "10.0.12.1", 65001, None, None)
        .neighbor("r2", "10.0.24.0", 65004, None, None)
        .router("r3")
        .iface("r3", "to1", "10.0.13.0/31")
        .iface("r3", "to4", "10.0.34.1/31")
        .bgp("r3", 65003, 3)
        .neighbor("r3", "10.0.13.1", 65001, None, None)
        .neighbor("r3", "10.0.34.0", 65004, None, None)
        .router("r4")
        .iface("r4", "to2", "10.0.24.0/31")
        .iface("r4", "to3", "10.0.34.0/31")
        .iface("r4", "lan", "192.168.4.1/24")
        .bgp("r4", 65004, 4)
        .neighbor("r4", "10.0.24.1", 65002, None, None)
        .neighbor("r4", "10.0.34.1", 65003, None, None)
        .network("r4", pfx("192.168.4.0/24"))
        .link("r1", "to2", "r2", "to1")
        .link("r1", "to3", "r3", "to1")
        .link("r2", "to4", "r4", "to2")
        .link("r3", "to4", "r4", "to3")
        .route_map("r1", "prefer", {
            let mut rm = RouteMap::default();
            rm.add(RouteMapClause {
                seq: 10,
                matches: vec![],
                action: RmAction::Permit,
                sets: vec![RmSet::LocalPref(200)],
            });
            rm
        })
        .build()
}

#[test]
fn local_pref_steers_egress_and_policy_edit_flips_it() {
    let snap = ebgp_diamond();
    let eng = CpEngine::new(snap.clone()).unwrap();
    assert_matches_reference(&eng, &snap, "diamond");
    // Import policy gives routes via r2 local-pref 200: r1 egresses to r2.
    let fib = eng.fib();
    let e = fib
        .iter()
        .find(|e| e.device == "r1" && e.prefix == pfx("192.168.4.0/24"))
        .expect("route to r4 lan");
    assert!(
        matches!(&e.action, FibAction::Forward { next: NextDevice::Device(d), .. } if d == "r2")
    );
    // Flip preference to r3 by rewriting the policy; then break the
    // preferred path and watch it fail over.
    let deprefer = {
        let mut rm = RouteMap::default();
        rm.add(RouteMapClause {
            seq: 10,
            matches: vec![],
            action: RmAction::Permit,
            sets: vec![RmSet::LocalPref(50)],
        });
        rm
    };
    check(
        snap,
        vec![
            ChangeSet::single(Change::SetRouteMap {
                device: "r1".into(),
                name: "prefer".into(),
                map: deprefer,
            }),
            ChangeSet::single(Change::LinkDown(link("r1", "to3", "r3", "to1"))),
            ChangeSet::single(Change::LinkUp(link("r1", "to3", "r3", "to1"))),
            // AS-path prepending at r3's export also steers away.
            ChangeSet::single(Change::SetRouteMap {
                device: "r3".into(),
                name: "pad".into(),
                map: {
                    let mut rm = RouteMap::default();
                    rm.add(RouteMapClause {
                        seq: 10,
                        matches: vec![],
                        action: RmAction::Permit,
                        sets: vec![RmSet::AsPathPrepend {
                            asn: 65003,
                            count: 3,
                        }],
                    });
                    rm
                },
            }),
        ],
    );
}

#[test]
fn ibgp_pair_with_external_announcement() {
    let snap = NetBuilder::new()
        .router("r1")
        .iface("r1", "to2", "10.0.12.1/31")
        .iface("r1", "ext", "172.16.0.1/30")
        .bgp("r1", 65001, 1)
        .neighbor("r1", "10.0.12.0", 65001, None, None)
        .neighbor("r1", "172.16.0.2", 64999, None, None)
        .router("r2")
        .iface("r2", "to1", "10.0.12.0/31")
        .bgp("r2", 65001, 2)
        .neighbor("r2", "10.0.12.1", 65001, None, None)
        .link("r1", "to2", "r2", "to1")
        .build();
    let announce = Change::ExternalAnnounce(ExternalRoute {
        device: "r1".into(),
        peer: ip("172.16.0.2"),
        attrs: RouteAttrs {
            prefix: pfx("8.8.8.0/24"),
            local_pref: 100,
            as_path: vec![64999],
            med: 0,
            origin: 0,
            communities: Default::default(),
        },
    });
    check(
        snap.clone(),
        vec![
            ChangeSet::single(announce.clone()),
            ChangeSet::single(Change::ExternalWithdraw {
                device: "r1".into(),
                peer: ip("172.16.0.2"),
                prefix: pfx("8.8.8.0/24"),
            }),
        ],
    );
    // Spot-check semantics: after the announcement, r2 learns 8.8.8.0/24
    // over iBGP (AD 200) while r1 holds it as eBGP (AD 20).
    let mut eng = CpEngine::new(snap).unwrap();
    eng.apply(&ChangeSet::single(announce)).unwrap();
    let rib = eng.rib();
    assert!(rib.iter().any(|e| e.device == "r1"
        && e.prefix == pfx("8.8.8.0/24")
        && e.proto == Proto::BgpExternal));
    assert!(rib.iter().any(|e| e.device == "r2"
        && e.prefix == pfx("8.8.8.0/24")
        && e.proto == Proto::BgpInternal));
}

#[test]
fn as_path_loop_prevention_blocks_reimport() {
    // r1 (AS 65001) hears an external route whose path contains 65001:
    // it must be rejected.
    let snap = NetBuilder::new()
        .router("r1")
        .iface("r1", "ext", "172.16.0.1/30")
        .bgp("r1", 65001, 1)
        .neighbor("r1", "172.16.0.2", 64999, None, None)
        .build();
    let mut eng = CpEngine::new(snap.clone()).unwrap();
    eng.apply(&ChangeSet::single(Change::ExternalAnnounce(
        ExternalRoute {
            device: "r1".into(),
            peer: ip("172.16.0.2"),
            attrs: RouteAttrs {
                prefix: pfx("9.9.9.0/24"),
                local_pref: 100,
                as_path: vec![64999, 65001, 64998],
                med: 0,
                origin: 0,
                communities: Default::default(),
            },
        },
    )))
    .unwrap();
    assert!(eng.rib().iter().all(|e| e.prefix != pfx("9.9.9.0/24")));
    // And the reference agrees.
    let mut cur = snap;
    cur.environment.external_routes.push(ExternalRoute {
        device: "r1".into(),
        peer: ip("172.16.0.2"),
        attrs: RouteAttrs {
            prefix: pfx("9.9.9.0/24"),
            local_pref: 100,
            as_path: vec![64999, 65001, 64998],
            med: 0,
            origin: 0,
            communities: Default::default(),
        },
    });
    assert_matches_reference(&eng, &cur, "loop prevention");
}

#[test]
fn mixed_protocols_admin_distance() {
    // OSPF and eBGP both offer 192.168.3.0/24 at r1; eBGP (AD 20) wins.
    // When the BGP session drops, OSPF takes over.
    let snap = NetBuilder::new()
        .router("r1")
        .iface("r1", "to2", "10.0.12.1/31")
        .iface("r1", "to3", "10.0.13.1/31")
        .bgp("r1", 65001, 1)
        .neighbor("r1", "10.0.12.0", 65002, None, None)
        .router("r2")
        .iface("r2", "to1", "10.0.12.0/31")
        .iface("r2", "lan", "192.168.3.2/24")
        .bgp("r2", 65002, 2)
        .neighbor("r2", "10.0.12.1", 65001, None, None)
        .network("r2", pfx("192.168.3.0/24"))
        .router("r3")
        .iface("r3", "to1", "10.0.13.0/31")
        .iface("r3", "lan", "192.168.3.1/24")
        .link("r1", "to2", "r2", "to1")
        .link("r1", "to3", "r3", "to1")
        .ospf("r1", "to3", 5)
        .ospf("r3", "to1", 5)
        .ospf_passive("r3", "lan", 1)
        .build();
    let eng = CpEngine::new(snap.clone()).unwrap();
    assert_matches_reference(&eng, &snap, "mixed protocols");
    let rib = eng.rib();
    let winner = rib
        .iter()
        .find(|e| e.device == "r1" && e.prefix == pfx("192.168.3.0/24"))
        .expect("route present");
    assert_eq!(winner.proto, Proto::BgpExternal, "AD 20 beats AD 110");
    check(
        snap,
        vec![
            ChangeSet::single(Change::LinkDown(link("r1", "to2", "r2", "to1"))),
            ChangeSet::single(Change::LinkUp(link("r1", "to2", "r2", "to1"))),
        ],
    );
}

#[test]
fn batched_changes_apply_atomically() {
    // A maintenance batch: fail a link, add a static fallback, adjust a
    // policy — all in one change set.
    let snap = ebgp_diamond();
    check(
        snap,
        vec![ChangeSet::of(vec![
            Change::LinkDown(link("r1", "to2", "r2", "to1")),
            Change::StaticRouteAdd {
                device: "r1".into(),
                route: net_model::StaticRoute {
                    prefix: pfx("192.168.99.0/24"),
                    next_hop: net_model::NextHop::Ip(ip("10.0.13.0")),
                    admin_distance: 1,
                },
            },
            Change::SetRouteMap {
                device: "r1".into(),
                name: "prefer".into(),
                map: RouteMap::permit_all(),
            },
        ])],
    );
}

#[test]
fn idempotent_and_redundant_changes() {
    let snap = two_routers();
    let l = link("r1", "eth0", "r2", "eth0");
    check(
        snap,
        vec![
            ChangeSet::single(Change::LinkDown(l.clone())),
            // Downing an already-down link must be a clean no-op.
            ChangeSet::single(Change::LinkDown(l.clone())),
            ChangeSet::single(Change::LinkUp(l.clone())),
            ChangeSet::single(Change::LinkUp(l)),
        ],
    );
}
