//! Shard-equivalence property of the sharded bring-up: for *any*
//! partition of the devices — balanced, lopsided, with empty shards —
//! [`CpEngine::sharded`] must produce an engine indistinguishable from
//! [`CpEngine::new`]: same RIB, same FIB, same state size, and
//! identical deltas for every subsequent change. The planner's balanced
//! partition is just one point in this space; the property holds
//! because the union of shard fact sets is a permutation of the
//! unsharded fact set and the merged commit consolidates input order
//! away.

use control_plane::CpEngine;
use ddflow::Config;
use net_model::ShardPlan;
use proptest::prelude::*;
use topo_gen::{fat_tree, wan, Routing, ScenarioGen, ScenarioKind, WanShape};

const SHARDS: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(10, 0xD9A_0010))]

    #[test]
    fn random_partitions_bring_up_identical_engines(
        assign in proptest::collection::vec(0usize..SHARDS, 10),
        seed in 0u64..1000,
    ) {
        let snap = wan(10, WanShape::Mesh { extra: 5 }, 8, 7).snapshot;
        let devices: Vec<String> = snap.devices.keys().cloned().collect();
        prop_assert_eq!(devices.len(), assign.len());
        let mut groups = vec![Vec::new(); SHARDS];
        for (d, &s) in devices.iter().zip(&assign) {
            groups[s].push(d.clone());
        }
        let plan = ShardPlan::from_groups(groups);
        let mut sharded =
            CpEngine::sharded(snap.clone(), Config::default(), &plan).expect("sharded bring-up");
        let mut plain = CpEngine::new(snap.clone()).expect("plain bring-up");
        prop_assert_eq!(sharded.rib(), plain.rib());
        prop_assert_eq!(sharded.fib(), plain.fib());
        prop_assert_eq!(sharded.state_tuples(), plain.state_tuples());
        sharded.drain_initial();
        plain.drain_initial();
        // Subsequent incremental deltas must be identical too — order
        // included, since canonical reports serialize them as emitted.
        let mut gen = ScenarioGen::new(seed);
        let seq = gen.sequence(
            &snap,
            &[
                ScenarioKind::LinkFailure,
                ScenarioKind::LinkRecovery,
                ScenarioKind::OspfCostChange,
            ],
            3,
        );
        for cs in seq {
            let a = sharded.apply(&cs).expect("sharded apply");
            let b = plain.apply(&cs).expect("plain apply");
            prop_assert_eq!(&a.rib, &b.rib);
            prop_assert_eq!(&a.fib, &b.fib);
        }
    }
}

/// The planner's own partitions (every practical shard count, on a
/// routed fat-tree) bring up identical engines as well.
#[test]
fn planned_partitions_bring_up_identical_engines() {
    let snap = fat_tree(4, Routing::Ebgp).snapshot;
    let plain = CpEngine::new(snap.clone()).expect("plain bring-up");
    for shards in [1, 2, 3, 4, 8] {
        let plan = ShardPlan::partition(&snap, shards);
        let sharded =
            CpEngine::sharded(snap.clone(), Config::default(), &plan).expect("sharded bring-up");
        assert_eq!(sharded.rib(), plain.rib(), "{shards} shards");
        assert_eq!(sharded.fib(), plain.fib(), "{shards} shards");
        assert_eq!(sharded.state_tuples(), plain.state_tuples());
    }
}
