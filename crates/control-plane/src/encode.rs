//! Encodings between model types and dynamically-typed engine rows.
//!
//! The differential program moves routes, policies and FIB actions through
//! the engine as [`Value`]s; this module defines the (total, reversible)
//! encodings plus the BGP preference comparator shared by the differential
//! rules *and* the reference simulator — sharing the comparator guarantees
//! both pick identical routes even on exotic ties.

use crate::types::{BgpSource, FibAction, FibEntry, NextDevice, Proto, RibEntry};
use ddflow::Value;
use net_model::route::{RmAction, RmMatch, RmSet, RouteMapClause};
use net_model::{Ipv4Addr, Ipv4Prefix, RouteAttrs, RouteMap};
use std::cmp::Ordering;

// ---------------------------------------------------------------- prefixes

/// Encodes a prefix as `(addr << 8) | len`.
pub fn enc_prefix(p: Ipv4Prefix) -> Value {
    Value::U64(((p.addr().0 as u64) << 8) | p.len() as u64)
}

/// Decodes a prefix encoded by [`enc_prefix`].
pub fn dec_prefix(v: &Value) -> Ipv4Prefix {
    let raw = v.as_u64();
    Ipv4Prefix::new(Ipv4Addr((raw >> 8) as u32), (raw & 0xff) as u8)
}

/// Encodes an address.
pub fn enc_addr(a: Ipv4Addr) -> Value {
    Value::U32(a.0)
}

/// Decodes an address.
pub fn dec_addr(v: &Value) -> Ipv4Addr {
    Ipv4Addr(v.as_u32())
}

// ------------------------------------------------------------- route attrs

/// Encodes BGP path attributes as
/// `(prefix, local_pref, med, origin, as_path, communities)`.
pub fn enc_attrs(a: &RouteAttrs) -> Value {
    Value::tuple(vec![
        enc_prefix(a.prefix),
        Value::U32(a.local_pref),
        Value::U32(a.med),
        Value::U32(a.origin as u32),
        Value::list(a.as_path.iter().map(|&x| Value::U32(x)).collect()),
        Value::list(a.communities.iter().map(|&x| Value::U32(x)).collect()),
    ])
}

/// Decodes attributes encoded by [`enc_attrs`].
pub fn dec_attrs(v: &Value) -> RouteAttrs {
    let t = v.as_tuple().expect("attrs tuple");
    RouteAttrs {
        prefix: dec_prefix(&t[0]),
        local_pref: t[1].as_u32(),
        med: t[2].as_u32(),
        origin: t[3].as_u32() as u8,
        as_path: t[4]
            .as_list()
            .expect("as_path list")
            .iter()
            .map(|x| x.as_u32())
            .collect(),
        communities: t[5]
            .as_list()
            .expect("communities list")
            .iter()
            .map(|x| x.as_u32())
            .collect(),
    }
}

// -------------------------------------------------------------- bgp source

/// Encodes the provenance of a BGP route.
pub fn enc_source(s: &BgpSource) -> Value {
    match s {
        BgpSource::Originated => Value::tuple(vec![Value::U32(0)]),
        BgpSource::External { peer } => Value::tuple(vec![Value::U32(1), enc_addr(*peer)]),
        BgpSource::Session {
            peer_device,
            peer_addr,
            ebgp,
            peer_router_id,
            via_iface,
        } => Value::tuple(vec![
            Value::U32(2),
            Value::str(peer_device),
            enc_addr(*peer_addr),
            Value::Bool(*ebgp),
            Value::U32(*peer_router_id),
            Value::str(via_iface),
        ]),
    }
}

/// Decodes a source encoded by [`enc_source`].
pub fn dec_source(v: &Value) -> BgpSource {
    let t = v.as_tuple().expect("source tuple");
    match t[0].as_u32() {
        0 => BgpSource::Originated,
        1 => BgpSource::External {
            peer: dec_addr(&t[1]),
        },
        2 => BgpSource::Session {
            peer_device: t[1].as_str().to_string(),
            peer_addr: dec_addr(&t[2]),
            ebgp: t[3].as_bool(),
            peer_router_id: t[4].as_u32(),
            via_iface: t[5].as_str().to_string(),
        },
        tag => panic!("unknown BgpSource tag {tag}"),
    }
}

/// Encodes a full BGP route `(attrs, source)` — the payload that flows
/// through the best-path scope.
pub fn enc_bgp_route(attrs: &RouteAttrs, source: &BgpSource) -> Value {
    Value::tuple(vec![enc_attrs(attrs), enc_source(source)])
}

/// Decodes a route encoded by [`enc_bgp_route`].
pub fn dec_bgp_route(v: &Value) -> (RouteAttrs, BgpSource) {
    let t = v.as_tuple().expect("bgp route tuple");
    (dec_attrs(&t[0]), dec_source(&t[1]))
}

// --------------------------------------------------------- best-path order

/// Rank of the session type (lower preferred): originated, then
/// eBGP/external, then iBGP.
fn source_rank(s: &BgpSource) -> u32 {
    match s {
        BgpSource::Originated => 0,
        BgpSource::External { .. } => 1,
        BgpSource::Session { ebgp: true, .. } => 1,
        BgpSource::Session { ebgp: false, .. } => 2,
    }
}

/// Tie-breaking id of the advertiser (router id for sessions, the neighbor
/// address for external peers, 0 for local origination).
fn source_id(s: &BgpSource) -> (u32, u32) {
    match s {
        BgpSource::Originated => (0, 0),
        BgpSource::External { peer } => (peer.0, peer.0),
        BgpSource::Session {
            peer_router_id,
            peer_addr,
            ..
        } => (*peer_router_id, peer_addr.0),
    }
}

/// The BGP decision process as a total order over encoded routes
/// (`Ordering::Less` = preferred): higher local-pref, shorter AS path,
/// lower origin, lower MED, eBGP over iBGP, lower advertiser router id,
/// lower advertiser address, and finally canonical value order so the
/// result is deterministic for any input.
pub fn bgp_route_cmp(a: &Value, b: &Value) -> Ordering {
    let (aa, sa) = dec_bgp_route(a);
    let (ab, sb) = dec_bgp_route(b);
    ab.local_pref
        .cmp(&aa.local_pref) // higher local pref preferred
        .then_with(|| aa.as_path.len().cmp(&ab.as_path.len()))
        .then_with(|| aa.origin.cmp(&ab.origin))
        .then_with(|| aa.med.cmp(&ab.med))
        .then_with(|| source_rank(&sa).cmp(&source_rank(&sb)))
        .then_with(|| source_id(&sa).cmp(&source_id(&sb)))
        .then_with(|| a.cmp(b))
}

// --------------------------------------------------------------- route maps

fn enc_match(m: &RmMatch) -> Value {
    match m {
        RmMatch::Prefix { covering, ge, le } => Value::tuple(vec![
            Value::U32(0),
            enc_prefix(*covering),
            Value::U32(*ge as u32),
            Value::U32(*le as u32),
        ]),
        RmMatch::Community(c) => Value::tuple(vec![Value::U32(1), Value::U32(*c)]),
        RmMatch::AsPathContains(asn) => Value::tuple(vec![Value::U32(2), Value::U32(*asn)]),
    }
}

fn dec_match(v: &Value) -> RmMatch {
    let t = v.as_tuple().expect("match tuple");
    match t[0].as_u32() {
        0 => RmMatch::Prefix {
            covering: dec_prefix(&t[1]),
            ge: t[2].as_u32() as u8,
            le: t[3].as_u32() as u8,
        },
        1 => RmMatch::Community(t[1].as_u32()),
        2 => RmMatch::AsPathContains(t[1].as_u32()),
        tag => panic!("unknown RmMatch tag {tag}"),
    }
}

fn enc_set(s: &RmSet) -> Value {
    match s {
        RmSet::LocalPref(v) => Value::tuple(vec![Value::U32(0), Value::U32(*v)]),
        RmSet::Med(v) => Value::tuple(vec![Value::U32(1), Value::U32(*v)]),
        RmSet::AddCommunity(c) => Value::tuple(vec![Value::U32(2), Value::U32(*c)]),
        RmSet::DeleteCommunity(c) => Value::tuple(vec![Value::U32(3), Value::U32(*c)]),
        RmSet::AsPathPrepend { asn, count } => Value::tuple(vec![
            Value::U32(4),
            Value::U32(*asn),
            Value::U32(*count as u32),
        ]),
    }
}

fn dec_set(v: &Value) -> RmSet {
    let t = v.as_tuple().expect("set tuple");
    match t[0].as_u32() {
        0 => RmSet::LocalPref(t[1].as_u32()),
        1 => RmSet::Med(t[1].as_u32()),
        2 => RmSet::AddCommunity(t[1].as_u32()),
        3 => RmSet::DeleteCommunity(t[1].as_u32()),
        4 => RmSet::AsPathPrepend {
            asn: t[1].as_u32(),
            count: t[2].as_u32() as u8,
        },
        tag => panic!("unknown RmSet tag {tag}"),
    }
}

/// Encodes a route map so policy contents flow through the engine as data
/// (policy edits become plain input deltas).
pub fn enc_route_map(rm: &RouteMap) -> Value {
    Value::list(
        rm.clauses
            .iter()
            .map(|c| {
                Value::tuple(vec![
                    Value::U32(c.seq),
                    Value::list(c.matches.iter().map(enc_match).collect()),
                    Value::Bool(matches!(c.action, RmAction::Permit)),
                    Value::list(c.sets.iter().map(enc_set).collect()),
                ])
            })
            .collect(),
    )
}

/// Decodes a route map encoded by [`enc_route_map`].
pub fn dec_route_map(v: &Value) -> RouteMap {
    let clauses = v
        .as_list()
        .expect("route map list")
        .iter()
        .map(|cv| {
            let t = cv.as_tuple().expect("clause tuple");
            RouteMapClause {
                seq: t[0].as_u32(),
                matches: t[1]
                    .as_list()
                    .expect("matches")
                    .iter()
                    .map(dec_match)
                    .collect(),
                action: if t[2].as_bool() {
                    RmAction::Permit
                } else {
                    RmAction::Deny
                },
                sets: t[3].as_list().expect("sets").iter().map(dec_set).collect(),
            }
        })
        .collect();
    RouteMap { clauses }
}

// ------------------------------------------------------------- fib entries

fn enc_next(n: &NextDevice) -> Value {
    match n {
        NextDevice::Device(d) => Value::tuple(vec![Value::U32(0), Value::str(d)]),
        NextDevice::External => Value::tuple(vec![Value::U32(1)]),
    }
}

fn dec_next(v: &Value) -> NextDevice {
    let t = v.as_tuple().expect("next tuple");
    match t[0].as_u32() {
        0 => NextDevice::Device(t[1].as_str().to_string()),
        1 => NextDevice::External,
        tag => panic!("unknown NextDevice tag {tag}"),
    }
}

/// Encodes a forwarding action.
pub fn enc_action(a: &FibAction) -> Value {
    match a {
        FibAction::Deliver { iface } => Value::tuple(vec![Value::U32(0), Value::str(iface)]),
        FibAction::Forward { iface, next } => {
            Value::tuple(vec![Value::U32(1), Value::str(iface), enc_next(next)])
        }
        FibAction::Drop => Value::tuple(vec![Value::U32(2)]),
    }
}

/// Decodes a forwarding action.
pub fn dec_action(v: &Value) -> FibAction {
    let t = v.as_tuple().expect("action tuple");
    match t[0].as_u32() {
        0 => FibAction::Deliver {
            iface: t[1].as_str().to_string(),
        },
        1 => FibAction::Forward {
            iface: t[1].as_str().to_string(),
            next: dec_next(&t[2]),
        },
        2 => FibAction::Drop,
        tag => panic!("unknown FibAction tag {tag}"),
    }
}

/// Encodes a FIB entry row `(device, prefix, action)`.
pub fn enc_fib(e: &FibEntry) -> Value {
    Value::tuple(vec![
        Value::str(&e.device),
        enc_prefix(e.prefix),
        enc_action(&e.action),
    ])
}

/// Decodes a FIB entry row.
pub fn dec_fib(v: &Value) -> FibEntry {
    let t = v.as_tuple().expect("fib tuple");
    FibEntry {
        device: t[0].as_str().to_string(),
        prefix: dec_prefix(&t[1]),
        action: dec_action(&t[2]),
    }
}

fn enc_proto(p: Proto) -> Value {
    Value::U32(match p {
        Proto::Connected => 0,
        Proto::Static => 1,
        Proto::BgpExternal => 2,
        Proto::Ospf => 3,
        Proto::BgpInternal => 4,
    })
}

fn dec_proto(v: &Value) -> Proto {
    match v.as_u32() {
        0 => Proto::Connected,
        1 => Proto::Static,
        2 => Proto::BgpExternal,
        3 => Proto::Ospf,
        4 => Proto::BgpInternal,
        tag => panic!("unknown Proto tag {tag}"),
    }
}

/// Encodes a RIB entry row `(device, prefix, proto, metric, action)`.
pub fn enc_rib(e: &RibEntry) -> Value {
    Value::tuple(vec![
        Value::str(&e.device),
        enc_prefix(e.prefix),
        enc_proto(e.proto),
        Value::U64(e.metric),
        enc_action(&e.action),
    ])
}

/// Decodes a RIB entry row.
pub fn dec_rib(v: &Value) -> RibEntry {
    let t = v.as_tuple().expect("rib tuple");
    RibEntry {
        device: t[0].as_str().to_string(),
        prefix: dec_prefix(&t[1]),
        proto: dec_proto(&t[2]),
        metric: t[3].as_u64(),
        action: dec_action(&t[4]),
    }
}

/// RIB preference over encoded rib-candidate payloads
/// `(ad, metric, proto, action-detail)`: lower administrative distance,
/// then lower metric; further fields only break ties canonically. ECMP
/// keeps all payloads minimal under this order's first two keys, so the
/// comparator exposes only those keys.
pub fn rib_cmp(a: &Value, b: &Value) -> Ordering {
    let ta = a.as_tuple().expect("rib cand");
    let tb = b.as_tuple().expect("rib cand");
    ta[0]
        .as_u32()
        .cmp(&tb[0].as_u32())
        .then_with(|| ta[1].as_u64().cmp(&tb[1].as_u64()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::route::RouteMapClause;
    use net_model::{ip, pfx};

    #[test]
    fn prefix_roundtrip() {
        for p in ["0.0.0.0/0", "10.1.2.0/24", "255.255.255.255/32"] {
            let pf = pfx(p);
            assert_eq!(dec_prefix(&enc_prefix(pf)), pf);
        }
    }

    #[test]
    fn attrs_roundtrip() {
        let mut a = RouteAttrs::originated(pfx("10.0.0.0/16"));
        a.local_pref = 250;
        a.med = 7;
        a.as_path = vec![65001, 65002, 65001];
        a.communities.insert(99);
        assert_eq!(dec_attrs(&enc_attrs(&a)), a);
    }

    #[test]
    fn source_roundtrip() {
        let sources = [
            BgpSource::Originated,
            BgpSource::External {
                peer: ip("9.9.9.9"),
            },
            BgpSource::Session {
                peer_device: "spine1".into(),
                peer_addr: ip("10.0.0.1"),
                ebgp: true,
                peer_router_id: 42,
                via_iface: "eth3".into(),
            },
        ];
        for s in sources {
            assert_eq!(dec_source(&enc_source(&s)), s);
        }
    }

    #[test]
    fn route_map_roundtrip() {
        let mut rm = RouteMap::default();
        rm.add(RouteMapClause {
            seq: 10,
            matches: vec![
                RmMatch::Prefix {
                    covering: pfx("10.0.0.0/8"),
                    ge: 16,
                    le: 24,
                },
                RmMatch::Community(5),
                RmMatch::AsPathContains(65000),
            ],
            action: RmAction::Deny,
            sets: vec![],
        });
        rm.add(RouteMapClause {
            seq: 20,
            matches: vec![],
            action: RmAction::Permit,
            sets: vec![
                RmSet::LocalPref(300),
                RmSet::Med(1),
                RmSet::AddCommunity(7),
                RmSet::DeleteCommunity(8),
                RmSet::AsPathPrepend {
                    asn: 65009,
                    count: 2,
                },
            ],
        });
        assert_eq!(dec_route_map(&enc_route_map(&rm)), rm);
    }

    #[test]
    fn fib_and_rib_roundtrip() {
        let entries = [
            FibEntry {
                device: "r1".into(),
                prefix: pfx("10.0.0.0/24"),
                action: FibAction::Deliver {
                    iface: "eth0".into(),
                },
            },
            FibEntry {
                device: "r1".into(),
                prefix: pfx("0.0.0.0/0"),
                action: FibAction::Forward {
                    iface: "eth1".into(),
                    next: NextDevice::External,
                },
            },
            FibEntry {
                device: "r2".into(),
                prefix: pfx("10.1.0.0/16"),
                action: FibAction::Drop,
            },
        ];
        for e in &entries {
            assert_eq!(&dec_fib(&enc_fib(e)), e);
        }
        let r = RibEntry {
            device: "r9".into(),
            prefix: pfx("10.2.0.0/16"),
            proto: Proto::Ospf,
            metric: 30,
            action: FibAction::Forward {
                iface: "eth2".into(),
                next: NextDevice::Device("r3".into()),
            },
        };
        assert_eq!(dec_rib(&enc_rib(&r)), r);
    }

    #[test]
    fn decision_process_order() {
        let base = RouteAttrs::originated(pfx("1.0.0.0/8"));
        let mk = |lp: u32, path: Vec<u32>, med: u32, src: BgpSource| {
            let mut a = base.clone();
            a.local_pref = lp;
            a.as_path = path;
            a.med = med;
            enc_bgp_route(&a, &src)
        };
        let ses = |dev: &str, rid: u32, ebgp: bool| BgpSource::Session {
            peer_device: dev.into(),
            peer_addr: ip("10.0.0.1"),
            ebgp,
            peer_router_id: rid,
            via_iface: "e0".into(),
        };
        // Higher local pref wins despite a longer path.
        let a = mk(200, vec![1, 2, 3], 0, ses("x", 1, true));
        let b = mk(100, vec![1], 0, ses("y", 2, true));
        assert_eq!(bgp_route_cmp(&a, &b), Ordering::Less);
        // Same local pref: shorter path wins.
        let c = mk(100, vec![1, 2], 0, ses("x", 1, true));
        assert_eq!(bgp_route_cmp(&b, &c), Ordering::Less);
        // Same so far: lower MED wins.
        let d = mk(100, vec![1], 5, ses("x", 1, true));
        assert_eq!(bgp_route_cmp(&b, &d), Ordering::Less);
        // eBGP preferred over iBGP.
        let e = mk(100, vec![1], 0, ses("z", 0, false));
        assert_eq!(bgp_route_cmp(&b, &e), Ordering::Less);
        // Final tie-break: lower router id.
        let f = mk(100, vec![1], 0, ses("w", 9, true));
        assert_eq!(bgp_route_cmp(&b, &f), Ordering::Less);
        // Total order sanity: some strict order between any two distinct.
        assert_ne!(bgp_route_cmp(&a, &b), Ordering::Equal);
    }

    #[test]
    fn rib_cmp_orders_by_ad_then_metric() {
        let cand = |ad: u32, metric: u64| {
            Value::tuple(vec![Value::U32(ad), Value::U64(metric), Value::Unit])
        };
        assert_eq!(rib_cmp(&cand(0, 99), &cand(110, 1)), Ordering::Less);
        assert_eq!(rib_cmp(&cand(110, 1), &cand(110, 2)), Ordering::Less);
        assert_eq!(rib_cmp(&cand(110, 2), &cand(110, 2)), Ordering::Equal);
    }
}
