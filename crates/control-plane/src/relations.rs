//! Input relations of the differential control-plane program.
//!
//! [`snapshot_facts`] translates a snapshot into base facts;
//! [`change_deltas`] translates a single [`Change`] into fact deltas
//! *without* touching unrelated facts — this locality is what makes the
//! differential pipeline's input cost proportional to the change, not the
//! network.

use crate::encode::{enc_addr, enc_attrs, enc_prefix, enc_route_map};
use ddflow::{Diff, Value};
use net_model::{Change, Link, NextHop, Snapshot};

/// Names of all input relations, in a stable order.
pub const RELATIONS: &[&str] = &[
    "iface",
    "link",
    "down_link",
    "down_device",
    "static_route",
    "ospf_iface",
    "bgp_proc",
    "bgp_neighbor",
    "bgp_network",
    "route_map",
    "external_route",
];

/// One fact: `(relation name, row)`.
pub type Fact = (&'static str, Value);
/// One delta: `(relation name, row, diff)`.
pub type FactDelta = (&'static str, Value, Diff);

fn enc_opt_name(n: &Option<String>) -> Value {
    match n {
        None => Value::Unit,
        Some(s) => Value::str(s),
    }
}

fn enc_next_hop(nh: &NextHop) -> Value {
    match nh {
        NextHop::Discard => Value::tuple(vec![Value::U32(0)]),
        NextHop::Ip(x) => Value::tuple(vec![Value::U32(1), enc_addr(*x)]),
    }
}

fn link_row(l: &Link) -> Value {
    Value::tuple(vec![
        Value::str(&l.a.device),
        Value::str(&l.a.iface),
        Value::str(&l.b.device),
        Value::str(&l.b.iface),
    ])
}

/// All base facts of a snapshot.
pub fn snapshot_facts(snap: &Snapshot) -> Vec<Fact> {
    let mut out: Vec<Fact> = Vec::new();
    for (dev, dc) in &snap.devices {
        device_facts(dev, dc, &mut out);
    }
    environment_facts(snap, |_| true, &mut out);
    out
}

/// The base facts of one shard: device-local facts of the shard's
/// devices plus the shard-owned slice of the global environment (a link
/// or external route is owned by its anchoring device's shard). The
/// concatenation of every shard's facts is a permutation of
/// [`snapshot_facts`] — the property the sharded bring-up relies on,
/// pinned by `sharded_facts_are_a_partition_of_snapshot_facts`.
pub fn shard_facts(snap: &Snapshot, plan: &net_model::ShardPlan, shard: usize) -> Vec<Fact> {
    let mut out: Vec<Fact> = Vec::new();
    for dev in &plan.groups()[shard] {
        if let Some(dc) = snap.devices.get(dev) {
            device_facts(dev, dc, &mut out);
        }
    }
    // Shard 0 adopts devices no group claims (mirroring
    // `ShardPlan::owner_of`'s fallback), so a hand-built partial plan
    // still yields the full fact multiset instead of a silently
    // incomplete engine.
    if shard == 0 {
        for (dev, dc) in snap.devices.iter().filter(|(d, _)| !plan.owns(d)) {
            device_facts(dev, dc, &mut out);
        }
    }
    environment_facts(snap, |anchor| plan.owner_of(anchor) == shard, &mut out);
    out
}

/// Facts anchored at one device's configuration.
fn device_facts(dev: &str, dc: &net_model::DeviceConfig, out: &mut Vec<Fact>) {
    for (ifname, ic) in &dc.interfaces {
        out.push((
            "iface",
            Value::tuple(vec![
                Value::str(dev),
                Value::str(ifname),
                enc_prefix(ic.prefix),
                enc_addr(ic.addr),
            ]),
        ));
        if let Some(o) = &ic.ospf {
            out.push((
                "ospf_iface",
                Value::tuple(vec![
                    Value::str(dev),
                    Value::str(ifname),
                    Value::U32(o.cost),
                    Value::U32(o.area),
                    Value::Bool(o.passive),
                ]),
            ));
        }
    }
    for r in &dc.static_routes {
        out.push((
            "static_route",
            Value::tuple(vec![
                Value::str(dev),
                enc_prefix(r.prefix),
                enc_next_hop(&r.next_hop),
                Value::U32(r.admin_distance as u32),
            ]),
        ));
    }
    if let Some(bgp) = &dc.bgp {
        out.push((
            "bgp_proc",
            Value::tuple(vec![
                Value::str(dev),
                Value::U32(bgp.asn),
                Value::U32(bgp.router_id),
            ]),
        ));
        for n in &bgp.neighbors {
            out.push((
                "bgp_neighbor",
                Value::tuple(vec![
                    Value::str(dev),
                    enc_addr(n.peer),
                    Value::U32(n.remote_as),
                    enc_opt_name(&n.import_policy),
                    enc_opt_name(&n.export_policy),
                ]),
            ));
        }
        for &p in &bgp.networks {
            out.push((
                "bgp_network",
                Value::tuple(vec![Value::str(dev), enc_prefix(p)]),
            ));
        }
    }
    for (name, rm) in &dc.route_maps {
        out.push((
            "route_map",
            Value::tuple(vec![Value::str(dev), Value::str(name), enc_route_map(rm)]),
        ));
    }
}

/// Global (non-device-config) facts whose anchoring device satisfies
/// `owned` — links and down-links anchor at their `a` endpoint,
/// failures and external routes at their device.
fn environment_facts(snap: &Snapshot, owned: impl Fn(&str) -> bool, out: &mut Vec<Fact>) {
    for l in snap.links.iter().filter(|l| owned(&l.a.device)) {
        out.push(("link", link_row(l)));
    }
    for l in snap
        .environment
        .down_links
        .iter()
        .filter(|l| owned(&l.a.device))
    {
        out.push(("down_link", link_row(l)));
    }
    for d in snap
        .environment
        .down_devices
        .iter()
        .filter(|d| owned(d.as_str()))
    {
        out.push(("down_device", Value::str(d)));
    }
    for e in snap
        .environment
        .external_routes
        .iter()
        .filter(|e| owned(&e.device))
    {
        out.push((
            "external_route",
            Value::tuple(vec![
                Value::str(&e.device),
                enc_addr(e.peer),
                enc_attrs(&e.attrs),
            ]),
        ));
    }
}

/// Fact deltas for one change, evaluated against the pre-change snapshot.
/// Control-plane relations only; ACL/interface-binding changes affect the
/// data-plane stage and yield no deltas here.
///
/// The caller must have verified the change applies cleanly (see
/// [`net_model::ChangeSet::apply`]); unknown references yield no deltas.
pub fn change_deltas(before: &Snapshot, change: &Change) -> Vec<FactDelta> {
    let mut out: Vec<FactDelta> = Vec::new();
    match change {
        Change::LinkDown(l) => {
            if before.links.contains(l) && !before.environment.down_links.contains(l) {
                out.push(("down_link", link_row(l), 1));
            }
        }
        Change::LinkUp(l) => {
            if before.environment.down_links.contains(l) {
                out.push(("down_link", link_row(l), -1));
            }
        }
        Change::DeviceDown(d) => {
            if before.devices.contains_key(d) && !before.environment.down_devices.contains(d) {
                out.push(("down_device", Value::str(d), 1));
            }
        }
        Change::DeviceUp(d) => {
            if before.environment.down_devices.contains(d) {
                out.push(("down_device", Value::str(d), -1));
            }
        }
        Change::SetRouteMap { device, name, map } => {
            if let Some(dc) = before.devices.get(device) {
                let new_row = Value::tuple(vec![
                    Value::str(device),
                    Value::str(name),
                    enc_route_map(map),
                ]);
                if let Some(old) = dc.route_maps.get(name) {
                    let old_row = Value::tuple(vec![
                        Value::str(device),
                        Value::str(name),
                        enc_route_map(old),
                    ]);
                    if old_row == new_row {
                        return out; // no-op edit
                    }
                    out.push(("route_map", old_row, -1));
                }
                out.push(("route_map", new_row, 1));
            }
        }
        Change::StaticRouteAdd { device, route } => {
            if before.devices.contains_key(device) {
                out.push((
                    "static_route",
                    Value::tuple(vec![
                        Value::str(device),
                        enc_prefix(route.prefix),
                        enc_next_hop(&route.next_hop),
                        Value::U32(route.admin_distance as u32),
                    ]),
                    1,
                ));
            }
        }
        Change::StaticRouteRemove {
            device,
            prefix,
            next_hop,
        } => {
            if let Some(dc) = before.devices.get(device) {
                if let Some(r) = dc
                    .static_routes
                    .iter()
                    .find(|r| r.prefix == *prefix && r.next_hop == *next_hop)
                {
                    out.push((
                        "static_route",
                        Value::tuple(vec![
                            Value::str(device),
                            enc_prefix(r.prefix),
                            enc_next_hop(&r.next_hop),
                            Value::U32(r.admin_distance as u32),
                        ]),
                        -1,
                    ));
                }
            }
        }
        Change::BgpNetworkAdd { device, prefix } => {
            if let Some(dc) = before.devices.get(device) {
                if let Some(bgp) = &dc.bgp {
                    if !bgp.networks.contains(prefix) {
                        out.push((
                            "bgp_network",
                            Value::tuple(vec![Value::str(device), enc_prefix(*prefix)]),
                            1,
                        ));
                    }
                }
            }
        }
        Change::BgpNetworkRemove { device, prefix } => {
            if let Some(dc) = before.devices.get(device) {
                if let Some(bgp) = &dc.bgp {
                    if bgp.networks.contains(prefix) {
                        out.push((
                            "bgp_network",
                            Value::tuple(vec![Value::str(device), enc_prefix(*prefix)]),
                            -1,
                        ));
                    }
                }
            }
        }
        Change::ExternalAnnounce(e) => {
            if before.devices.contains_key(&e.device) {
                out.push((
                    "external_route",
                    Value::tuple(vec![
                        Value::str(&e.device),
                        enc_addr(e.peer),
                        enc_attrs(&e.attrs),
                    ]),
                    1,
                ));
            }
        }
        Change::ExternalWithdraw {
            device,
            peer,
            prefix,
        } => {
            if let Some(e) = before
                .environment
                .external_routes
                .iter()
                .find(|e| e.device == *device && e.peer == *peer && e.attrs.prefix == *prefix)
            {
                out.push((
                    "external_route",
                    Value::tuple(vec![
                        Value::str(&e.device),
                        enc_addr(e.peer),
                        enc_attrs(&e.attrs),
                    ]),
                    -1,
                ));
            }
        }
        Change::SetOspfCost {
            device,
            iface,
            cost,
        } => {
            if let Some(o) = before
                .devices
                .get(device)
                .and_then(|dc| dc.interfaces.get(iface))
                .and_then(|ic| ic.ospf.as_ref())
            {
                if o.cost != *cost {
                    let row = |c: u32| {
                        Value::tuple(vec![
                            Value::str(device),
                            Value::str(iface),
                            Value::U32(c),
                            Value::U32(o.area),
                            Value::Bool(o.passive),
                        ])
                    };
                    out.push(("ospf_iface", row(o.cost), -1));
                    out.push(("ospf_iface", row(*cost), 1));
                }
            }
        }
        // Data-plane-only changes: no control-plane fact deltas.
        Change::AclEntryAdd { .. }
        | Change::AclEntryRemove { .. }
        | Change::SetAclIn { .. }
        | Change::SetAclOut { .. } => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::{
        ip, pfx, ChangeSet, DeviceConfig, Endpoint, IfaceConfig, RouteMap, StaticRoute,
    };

    fn snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        let mut r1 = DeviceConfig::default();
        r1.interfaces.insert(
            "eth0".into(),
            IfaceConfig::new(ip("10.0.0.1"), 31).with_ospf(3),
        );
        r1.route_maps.insert("rm".into(), RouteMap::permit_all());
        let mut r2 = DeviceConfig::default();
        r2.interfaces
            .insert("eth0".into(), IfaceConfig::new(ip("10.0.0.0"), 31));
        snap.devices.insert("r1".into(), r1);
        snap.devices.insert("r2".into(), r2);
        snap.links.push(Link::new(
            Endpoint::new("r1", "eth0"),
            Endpoint::new("r2", "eth0"),
        ));
        snap
    }

    /// Deltas must agree with the fact-set difference of applying the
    /// change — the soundness property of the translator.
    fn assert_delta_consistent(snap: &Snapshot, change: Change) {
        let after = ChangeSet::single(change.clone()).apply(snap).unwrap();
        let mut expected: Vec<(String, Value, Diff)> = Vec::new();
        let before_facts = snapshot_facts(snap);
        let after_facts = snapshot_facts(&after);
        use std::collections::HashMap;
        let mut counts: HashMap<(String, Value), Diff> = HashMap::new();
        for (r, v) in &after_facts {
            *counts.entry((r.to_string(), v.clone())).or_insert(0) += 1;
        }
        for (r, v) in &before_facts {
            *counts.entry((r.to_string(), v.clone())).or_insert(0) -= 1;
        }
        for ((r, v), d) in counts {
            if d != 0 {
                expected.push((r, v, d));
            }
        }
        expected.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        let mut got: Vec<(String, Value, Diff)> = change_deltas(snap, &change)
            .into_iter()
            .map(|(r, v, d)| (r.to_string(), v, d))
            .collect();
        got.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        assert_eq!(got, expected, "deltas diverge for {change}");
    }

    #[test]
    fn snapshot_facts_cover_all_relations_present() {
        let snap = snapshot();
        let facts = snapshot_facts(&snap);
        let rels: std::collections::BTreeSet<&str> = facts.iter().map(|(r, _)| *r).collect();
        assert!(rels.contains("iface"));
        assert!(rels.contains("link"));
        assert!(rels.contains("ospf_iface"));
        assert!(rels.contains("route_map"));
        // 3 ifaces? two ifaces, one link, one ospf, one route map.
        assert_eq!(facts.iter().filter(|(r, _)| *r == "iface").count(), 2);
    }

    #[test]
    fn deltas_match_fact_diff_for_every_change_kind() {
        let snap = snapshot();
        let link = snap.links[0].clone();
        assert_delta_consistent(&snap, Change::LinkDown(link.clone()));
        assert_delta_consistent(&snap, Change::DeviceDown("r2".into()));
        assert_delta_consistent(
            &snap,
            Change::StaticRouteAdd {
                device: "r1".into(),
                route: StaticRoute {
                    prefix: pfx("0.0.0.0/0"),
                    next_hop: NextHop::Ip(ip("10.0.0.0")),
                    admin_distance: 1,
                },
            },
        );
        assert_delta_consistent(
            &snap,
            Change::SetOspfCost {
                device: "r1".into(),
                iface: "eth0".into(),
                cost: 44,
            },
        );
        assert_delta_consistent(
            &snap,
            Change::SetRouteMap {
                device: "r1".into(),
                name: "rm".into(),
                map: RouteMap::default(),
            },
        );
        assert_delta_consistent(
            &snap,
            Change::SetRouteMap {
                device: "r1".into(),
                name: "fresh".into(),
                map: RouteMap::permit_all(),
            },
        );
    }

    #[test]
    fn redundant_changes_produce_no_deltas() {
        let mut snap = snapshot();
        let link = snap.links[0].clone();
        snap.environment.down_links.insert(link.clone());
        // Already down: down again is a no-op.
        assert!(change_deltas(&snap, &Change::LinkDown(link.clone())).is_empty());
        // Up produces exactly one retraction.
        assert_eq!(change_deltas(&snap, &Change::LinkUp(link)).len(), 1);
        // Identical route-map replacement is a no-op.
        assert!(change_deltas(
            &snap,
            &Change::SetRouteMap {
                device: "r1".into(),
                name: "rm".into(),
                map: RouteMap::permit_all(),
            }
        )
        .is_empty());
    }

    #[test]
    fn sharded_facts_are_a_partition_of_snapshot_facts() {
        let mut snap = snapshot();
        // Exercise every global-fact family, not just links.
        snap.environment.down_links.insert(snap.links[0].clone());
        snap.environment.down_devices.insert("r2".into());
        let sort_key = |f: &(String, Value)| (f.0.clone(), f.1.clone());
        let mut expected: Vec<(String, Value)> = snapshot_facts(&snap)
            .into_iter()
            .map(|(r, v)| (r.to_string(), v))
            .collect();
        expected.sort_by_key(sort_key);
        for n in [1, 2, 5] {
            let plan = net_model::ShardPlan::partition(&snap, n);
            let mut got: Vec<(String, Value)> = (0..plan.shard_count())
                .flat_map(|s| shard_facts(&snap, &plan, s))
                .map(|(r, v)| (r.to_string(), v))
                .collect();
            got.sort_by_key(sort_key);
            assert_eq!(got, expected, "shard facts diverge for {n} shards");
        }
        // A hand-built plan that fails to claim a device must still
        // cover it: shard 0 adopts the unowned remainder.
        let partial = net_model::ShardPlan::from_groups(vec![vec![], vec!["r1".into()]]);
        let mut got: Vec<(String, Value)> = (0..partial.shard_count())
            .flat_map(|s| shard_facts(&snap, &partial, s))
            .map(|(r, v)| (r.to_string(), v))
            .collect();
        got.sort_by_key(sort_key);
        assert_eq!(got, expected, "partial plan must not drop device facts");
    }

    #[test]
    fn acl_changes_yield_no_control_plane_deltas() {
        let snap = snapshot();
        assert!(change_deltas(
            &snap,
            &Change::SetAclIn {
                device: "r1".into(),
                iface: "eth0".into(),
                acl: Some("x".into()),
            }
        )
        .is_empty());
    }
}
