//! The differential control-plane program.
//!
//! Encodes the reference semantics (`reference.rs`) as an incremental
//! Datalog program over the `ddflow` engine: liveness strata, OSPF SPF
//! (recursive scope), BGP best-path propagation (recursive scope),
//! administrative-distance RIB merge and FIB projection. Input relations
//! are produced by [`crate::relations`]; outputs are the `rib` and `fib`
//! relations holding encoded [`crate::types::RibEntry`] /
//! [`crate::types::FibEntry`] rows.
//!
//! Conventions shared with the reference simulator (normative list):
//!
//! * next-hop-self on all BGP sessions (the IGP-cost decision step is moot);
//! * split horizon + no iBGP reflection;
//! * undefined route-map references behave as permit-all;
//! * static/external next hops resolve to the containing up interface with
//!   the longest prefix, breaking ties by interface name;
//! * locally originated BGP routes are not installed in the RIB (their
//!   prefixes are already connected/static).

use crate::encode::{
    bgp_route_cmp, dec_attrs, dec_bgp_route, dec_prefix, dec_route_map, enc_bgp_route, enc_prefix,
    enc_route_map, rib_cmp,
};
use crate::types::BgpSource;
use ddflow::{aggregates, GraphBuilder, Handle, InputHandle, OutputHandle, Program, Value};
use net_model::{Ipv4Addr, RouteAttrs, RouteMap};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Handles into a built control-plane program.
pub struct CpHandles {
    /// Input relations by name (see [`crate::relations::RELATIONS`]).
    pub inputs: BTreeMap<&'static str, InputHandle>,
    /// Installed routes (encoded [`crate::types::RibEntry`] rows).
    pub rib: OutputHandle,
    /// Forwarding entries (encoded [`crate::types::FibEntry`] rows).
    pub fib: OutputHandle,
}

// Candidate payloads are `(ad, metric, proto, action)`.
fn cand(ad: u32, metric: u64, proto: u32, action: Value) -> Value {
    Value::tuple(vec![
        Value::U32(ad),
        Value::U64(metric),
        Value::U32(proto),
        action,
    ])
}

fn deliver(iface: &Value) -> Value {
    Value::tuple(vec![Value::U32(0), iface.clone()])
}

fn forward_device(iface: &Value, dev: &Value) -> Value {
    Value::tuple(vec![
        Value::U32(1),
        iface.clone(),
        Value::tuple(vec![Value::U32(0), dev.clone()]),
    ])
}

fn forward_external(iface: &Value) -> Value {
    Value::tuple(vec![
        Value::U32(1),
        iface.clone(),
        Value::tuple(vec![Value::U32(1)]),
    ])
}

const DROP: u32 = 2;
const PROTO_CONNECTED: u32 = 0;
const PROTO_STATIC: u32 = 1;
const PROTO_BGP_E: u32 = 2;
const PROTO_OSPF: u32 = 3;
const PROTO_BGP_I: u32 = 4;

/// Interface choice for next-hop resolution: longest prefix, then name.
fn iface_choice_cmp(a: &Value, b: &Value) -> Ordering {
    let (ta, tb) = (a.as_tuple().unwrap(), b.as_tuple().unwrap());
    tb[1]
        .as_u32()
        .cmp(&ta[1].as_u32())
        .then_with(|| ta[0].as_str().cmp(tb[0].as_str()))
}

/// Replaces one field of a tuple row.
fn with_field(row: &Value, idx: usize, v: Value) -> Value {
    let mut fields: Vec<Value> = row.as_tuple().expect("tuple row").to_vec();
    fields[idx] = v;
    Value::tuple(fields)
}

/// Resolves an optional route-map *name* field of each row into the
/// encoded route-map *contents*: `Unit` and undefined names become
/// permit-all; defined names join against the `route_map` relation.
/// `dev_idx`/`name_idx` locate the lookup device and name in the row.
fn attach_policy(
    g: &mut GraphBuilder,
    rows: Handle,
    rm_kv: Handle,
    rm_keys: Handle,
    dev_idx: usize,
    name_idx: usize,
) -> Handle {
    let permit = enc_route_map(&RouteMap::permit_all());
    let p1 = permit.clone();
    let unnamed = g.filter(rows, move |r| *r.field(name_idx) == Value::Unit);
    let unnamed = g.map(unnamed, move |r| with_field(r, name_idx, p1.clone()));
    let named = g.filter(rows, move |r| matches!(r.field(name_idx), Value::Str(_)));
    let named_kv = g.map(named, move |r| {
        Value::kv(
            Value::tuple(vec![r.field(dev_idx).clone(), r.field(name_idx).clone()]),
            r.clone(),
        )
    });
    let defined = g.join(named_kv, rm_kv, move |_, row, map| {
        with_field(row, name_idx, map.clone())
    });
    let p2 = permit;
    let undefined = g.antijoin(named_kv, rm_keys);
    let undefined = g.map(undefined, move |kv| {
        with_field(kv.payload(), name_idx, p2.clone())
    });
    g.concat(&[unnamed, defined, undefined])
}

/// Builds the differential control-plane program.
pub fn build_program() -> (Program, CpHandles) {
    let mut g = GraphBuilder::new();
    let mut inputs = BTreeMap::new();
    let mut input = |g: &mut GraphBuilder, name: &'static str| {
        let (ih, h) = g.input(name);
        inputs.insert(name, ih);
        h
    };
    let iface = input(&mut g, "iface");
    let link = input(&mut g, "link");
    let down_link = input(&mut g, "down_link");
    let down_device = input(&mut g, "down_device");
    let static_route = input(&mut g, "static_route");
    let ospf_iface = input(&mut g, "ospf_iface");
    let bgp_proc = input(&mut g, "bgp_proc");
    let bgp_neighbor = input(&mut g, "bgp_neighbor");
    let bgp_network = input(&mut g, "bgp_network");
    let route_map = input(&mut g, "route_map");
    let external_route = input(&mut g, "external_route");

    // ---------------------------------------------------------- liveness
    let both_dirs = |r: &Value| {
        let t = r.as_tuple().unwrap();
        vec![
            Value::tuple(vec![t[0].clone(), t[1].clone(), t[2].clone(), t[3].clone()]),
            Value::tuple(vec![t[2].clone(), t[3].clone(), t[0].clone(), t[1].clone()]),
        ]
    };
    let link_sym = g.flat_map(link, both_dirs);
    let down_link_sym = g.flat_map(down_link, both_dirs);
    let up0 = g.map(link_sym, |r| Value::kv(r.clone(), Value::Unit));
    let up1 = g.antijoin(up0, down_link_sym);
    let up2 = g.map(up1, |kv| {
        let sym = kv.key();
        Value::kv(sym.field(0).clone(), sym.clone())
    });
    let up3 = g.antijoin(up2, down_device);
    let up4 = g.map(up3, |kv| {
        let sym = kv.payload();
        Value::kv(sym.field(2).clone(), sym.clone())
    });
    let up5 = g.antijoin(up4, down_device);
    // Rows: (my_dev, my_if, other_dev, other_if) for each live direction.
    let up_link_sym = g.map(up5, |kv| kv.payload().clone());

    let linked_iface0 = g.flat_map(link, |r| {
        let t = r.as_tuple().unwrap();
        vec![
            Value::tuple(vec![t[0].clone(), t[1].clone()]),
            Value::tuple(vec![t[2].clone(), t[3].clone()]),
        ]
    });
    let linked_iface = g.distinct(linked_iface0);

    let iface_by_dev = g.map(iface, |r| Value::kv(r.field(0).clone(), r.clone()));
    let live_iface = g.antijoin(iface_by_dev, down_device);
    // kv((dev, if), iface_row)
    let live_by_ifkey = g.map(live_iface, |kv| {
        let r = kv.payload();
        Value::kv(
            Value::tuple(vec![r.field(0).clone(), r.field(1).clone()]),
            r.clone(),
        )
    });
    let unlinked_up = g.antijoin(live_by_ifkey, linked_iface);
    let up_ends = g.map(up_link_sym, |r| {
        Value::tuple(vec![r.field(0).clone(), r.field(1).clone()])
    });
    let linked_up = g.semijoin(live_by_ifkey, up_ends);
    // kv((dev, if), (dev, if, prefix, addr))
    let up_iface_kv = g.concat(&[unlinked_up, linked_up]);
    // Rows: (dev, if, prefix, addr)
    let up_iface = g.map(up_iface_kv, |kv| kv.payload().clone());
    let up_iface_by_dev = g.map(up_iface, |r| Value::kv(r.field(0).clone(), r.clone()));

    // ------------------------------------------------------ connected RIB
    let conn_cand = g.map(up_iface, |r| {
        Value::kv(
            Value::tuple(vec![r.field(0).clone(), r.field(2).clone()]),
            cand(0, 0, PROTO_CONNECTED, deliver(r.field(1))),
        )
    });

    // ----------------------------------------------------------- adjacency
    // Rows: (my_dev, my_if, peer_dev, peer_if, peer_addr, my_addr)
    let adj0 = g.map(up_link_sym, |r| {
        Value::kv(
            Value::tuple(vec![r.field(2).clone(), r.field(3).clone()]),
            Value::tuple(vec![r.field(0).clone(), r.field(1).clone()]),
        )
    });
    let addr_of = g.map(up_iface_kv, |kv| {
        Value::kv(kv.key().clone(), kv.payload().field(3).clone())
    });
    let adj1 = g.join(adj0, addr_of, |other, me, peer_addr| {
        Value::kv(
            me.clone(),
            Value::tuple(vec![
                other.field(0).clone(),
                other.field(1).clone(),
                peer_addr.clone(),
            ]),
        )
    });
    let adjacency = g.join(adj1, addr_of, |me, peer, my_addr| {
        Value::tuple(vec![
            me.field(0).clone(),
            me.field(1).clone(),
            peer.field(0).clone(),
            peer.field(1).clone(),
            peer.field(2).clone(),
            my_addr.clone(),
        ])
    });

    // -------------------------------------------------------- static routes
    let static_by_dev = g.map(static_route, |r| Value::kv(r.field(0).clone(), r.clone()));
    let live_static_kv = g.antijoin(static_by_dev, down_device);
    let live_static = g.map(live_static_kv, |kv| kv.payload().clone());
    let discard_cand = {
        let d = g.filter(live_static, |r| r.field(2).field(0).as_u32() == 0);
        g.map(d, |r| {
            Value::kv(
                Value::tuple(vec![r.field(0).clone(), r.field(1).clone()]),
                cand(
                    r.field(3).as_u32(),
                    0,
                    PROTO_STATIC,
                    Value::tuple(vec![Value::U32(DROP)]),
                ),
            )
        })
    };
    // (dev, prefix, x, ad) for next-hop-ip statics, keyed by device.
    let ip_static = {
        let s = g.filter(live_static, |r| r.field(2).field(0).as_u32() == 1);
        g.map(s, |r| {
            Value::kv(
                r.field(0).clone(),
                Value::tuple(vec![
                    r.field(1).clone(),
                    r.field(2).field(1).clone(),
                    r.field(3).clone(),
                ]),
            )
        })
    };
    // Containing up interfaces, deterministically choosing one.
    let st_if0 = g.join(ip_static, up_iface_by_dev, |dev, st, ifr| {
        let x = Ipv4Addr(st.field(1).as_u32());
        let ipfx = dec_prefix(ifr.field(2));
        if ipfx.contains(x) {
            Value::kv(
                Value::tuple(vec![dev.clone(), st.clone()]),
                Value::tuple(vec![ifr.field(1).clone(), Value::U32(ipfx.len() as u32)]),
            )
        } else {
            Value::Unit
        }
    });
    let st_if1 = g.filter(st_if0, |r| *r != Value::Unit);
    let st_if = g.reduce(st_if1, aggregates::best_by(iface_choice_cmp));
    // Keyed (dev, iface, nh_ip) for adjacency matching.
    let st1 = g.map(st_if, |kv| {
        let dev = kv.key().field(0).clone();
        let st = kv.key().field(1); // (prefix, x, ad)
        let ifname = kv.payload().field(0).clone();
        Value::kv(
            Value::tuple(vec![dev.clone(), ifname.clone(), st.field(1).clone()]),
            Value::tuple(vec![dev, st.field(0).clone(), st.field(2).clone(), ifname]),
        )
    });
    let adj_by_addr = g.map(adjacency, |r| {
        Value::kv(
            Value::tuple(vec![
                r.field(0).clone(),
                r.field(1).clone(),
                r.field(4).clone(),
            ]),
            r.field(2).clone(),
        )
    });
    let st_dev_cand = g.join(st1, adj_by_addr, |_, st, peer| {
        Value::kv(
            Value::tuple(vec![st.field(0).clone(), st.field(1).clone()]),
            cand(
                st.field(2).as_u32(),
                0,
                PROTO_STATIC,
                forward_device(st.field(3), peer),
            ),
        )
    });
    let adj_addr_keys = g.map(adjacency, |r| {
        Value::tuple(vec![
            r.field(0).clone(),
            r.field(1).clone(),
            r.field(4).clone(),
        ])
    });
    let st_ext0 = g.antijoin(st1, adj_addr_keys);
    let st_ext_cand = g.map(st_ext0, |kv| {
        let st = kv.payload();
        Value::kv(
            Value::tuple(vec![st.field(0).clone(), st.field(1).clone()]),
            cand(
                st.field(2).as_u32(),
                0,
                PROTO_STATIC,
                forward_external(st.field(3)),
            ),
        )
    });

    // --------------------------------------------------------------- OSPF
    let ospf_by_ifkey = g.map(ospf_iface, |r| {
        Value::kv(
            Value::tuple(vec![r.field(0).clone(), r.field(1).clone()]),
            Value::tuple(vec![
                r.field(2).clone(),
                r.field(3).clone(),
                r.field(4).clone(),
            ]),
        )
    });
    // (dev, if, prefix, cost, area, passive) for live OSPF interfaces.
    let ospf_full = g.join(ospf_by_ifkey, up_iface_kv, |k, oc, ifr| {
        Value::tuple(vec![
            k.field(0).clone(),
            k.field(1).clone(),
            ifr.field(2).clone(),
            oc.field(0).clone(),
            oc.field(1).clone(),
            oc.field(2).clone(),
        ])
    });
    // (dev, prefix, cost): advertisements, passive included.
    let adverts = g.map(ospf_full, |r| {
        Value::tuple(vec![
            r.field(0).clone(),
            r.field(2).clone(),
            r.field(3).clone(),
        ])
    });
    let ospf_active = {
        let a = g.filter(ospf_full, |r| !r.field(5).as_bool());
        g.map(a, |r| {
            Value::kv(
                Value::tuple(vec![r.field(0).clone(), r.field(1).clone()]),
                Value::tuple(vec![r.field(3).clone(), r.field(4).clone()]),
            )
        })
    };
    let adj_by_me = g.map(adjacency, |r| {
        Value::kv(
            Value::tuple(vec![r.field(0).clone(), r.field(1).clone()]),
            Value::tuple(vec![r.field(2).clone(), r.field(3).clone()]),
        )
    });
    let e0 = g.join(adj_by_me, ospf_active, |me, peer, oc| {
        Value::kv(
            peer.clone(),
            Value::tuple(vec![
                me.field(0).clone(),
                me.field(1).clone(),
                oc.field(0).clone(),
                oc.field(1).clone(),
            ]),
        )
    });
    // Directed edges (from, via_if, to, cost), both ends active, same area.
    let edges0 = g.join(e0, ospf_active, |peer, me, poc| {
        if me.field(3) == poc.field(1) {
            Value::tuple(vec![
                me.field(0).clone(),
                me.field(1).clone(),
                peer.field(0).clone(),
                me.field(2).clone(),
            ])
        } else {
            Value::Unit
        }
    });
    let edges = g.filter(edges0, |r| *r != Value::Unit);
    let routers0 = g.map(ospf_full, |r| r.field(0).clone());
    let routers = g.distinct(routers0);

    // SPF fixpoint: dist rows kv(node, (target, cost)).
    let dist = g.iterate("ospf-spf", |g, s| {
        let routers = g.enter(s, routers);
        let edges = g.enter(s, edges);
        let seeds = g.map(routers, |d| {
            Value::kv(d.clone(), Value::tuple(vec![d.clone(), Value::U64(0)]))
        });
        let edges_by_to = g.map(edges, |r| {
            Value::kv(
                r.field(2).clone(),
                Value::tuple(vec![
                    r.field(0).clone(),
                    Value::U64(r.field(3).as_u32() as u64),
                ]),
            )
        });
        let var = g.variable(s, "dist", seeds);
        let step = g.join(var, edges_by_to, |_, tc, fc| {
            Value::kv(
                fc.field(0).clone(),
                Value::tuple(vec![
                    tc.field(0).clone(),
                    Value::U64(tc.field(1).as_u64() + fc.field(1).as_u64()),
                ]),
            )
        });
        let cand_all = g.concat(&[seeds, step]);
        let keyed = g.map(cand_all, |kv| {
            Value::kv(
                Value::tuple(vec![kv.key().clone(), kv.payload().field(0).clone()]),
                kv.payload().field(1).clone(),
            )
        });
        let mins = g.reduce(keyed, aggregates::min());
        let next = g.map(mins, |kv| {
            Value::kv(
                kv.key().field(0).clone(),
                Value::tuple(vec![kv.key().field(1).clone(), kv.payload().clone()]),
            )
        });
        g.connect(var, next);
        g.leave(s, next)
    });

    // First hops: nh rows ((s,t) -> (n, via_if)).
    let edges_by_to_top = g.map(edges, |r| {
        Value::kv(
            r.field(2).clone(),
            Value::tuple(vec![
                r.field(0).clone(),
                r.field(1).clone(),
                Value::U64(r.field(3).as_u32() as u64),
            ]),
        )
    });
    let j1 = g.join(dist, edges_by_to_top, |n, tc, svc| {
        Value::kv(
            Value::tuple(vec![svc.field(0).clone(), tc.field(0).clone()]),
            Value::tuple(vec![
                n.clone(),
                svc.field(1).clone(),
                Value::U64(svc.field(2).as_u64() + tc.field(1).as_u64()),
            ]),
        )
    });
    let dist_by_st = g.map(dist, |kv| {
        Value::kv(
            Value::tuple(vec![kv.key().clone(), kv.payload().field(0).clone()]),
            kv.payload().field(1).clone(),
        )
    });
    let nh0 = g.join(j1, dist_by_st, |st, candv, total| {
        if candv.field(2).as_u64() == total.as_u64() {
            Value::kv(
                st.clone(),
                Value::tuple(vec![candv.field(0).clone(), candv.field(1).clone()]),
            )
        } else {
            Value::Unit
        }
    });
    let nh = g.filter(nh0, |r| *r != Value::Unit);

    // Route totals and winners.
    let dist_by_t = g.map(dist, |kv| {
        Value::kv(
            kv.payload().field(0).clone(),
            Value::tuple(vec![kv.key().clone(), kv.payload().field(1).clone()]),
        )
    });
    let adverts_by_dev = g.map(adverts, |r| {
        Value::kv(
            r.field(0).clone(),
            Value::tuple(vec![
                r.field(1).clone(),
                Value::U64(r.field(2).as_u32() as u64),
            ]),
        )
    });
    let rc0 = g.join(dist_by_t, adverts_by_dev, |t, sc, pc| {
        if sc.field(0) == t {
            Value::Unit // own prefixes are connected routes
        } else {
            Value::kv(
                Value::tuple(vec![sc.field(0).clone(), pc.field(0).clone()]),
                Value::tuple(vec![
                    t.clone(),
                    Value::U64(sc.field(1).as_u64() + pc.field(1).as_u64()),
                ]),
            )
        }
    });
    let rc = g.filter(rc0, |r| *r != Value::Unit);
    let totals = g.map(rc, |kv| {
        Value::kv(kv.key().clone(), kv.payload().field(1).clone())
    });
    let best_total = g.reduce(totals, aggregates::min());
    let winners0 = g.join(rc, best_total, |sp, tv, best| {
        if tv.field(1).as_u64() == best.as_u64() {
            Value::kv(
                Value::tuple(vec![sp.field(0).clone(), tv.field(0).clone()]),
                Value::tuple(vec![sp.field(1).clone(), best.clone()]),
            )
        } else {
            Value::Unit
        }
    });
    let winners = g.filter(winners0, |r| *r != Value::Unit);
    let routes0 = g.join(winners, nh, |st, pb, nvi| {
        Value::tuple(vec![
            st.field(0).clone(),
            pb.field(0).clone(),
            nvi.field(1).clone(),
            nvi.field(0).clone(),
            pb.field(1).clone(),
        ])
    });
    let routes1 = g.distinct(routes0);
    let ospf_cand = g.map(routes1, |r| {
        Value::kv(
            Value::tuple(vec![r.field(0).clone(), r.field(1).clone()]),
            cand(
                110,
                r.field(4).as_u64(),
                PROTO_OSPF,
                forward_device(r.field(2), r.field(3)),
            ),
        )
    });

    // ---------------------------------------------------------------- BGP
    let rm_kv = g.map(route_map, |r| {
        Value::kv(
            Value::tuple(vec![r.field(0).clone(), r.field(1).clone()]),
            r.field(2).clone(),
        )
    });
    let rm_keys = g.map(route_map, |r| {
        Value::tuple(vec![r.field(0).clone(), r.field(1).clone()])
    });
    let live_bgp0 = g.map(bgp_proc, |r| {
        Value::kv(
            r.field(0).clone(),
            Value::tuple(vec![r.field(1).clone(), r.field(2).clone()]),
        )
    });
    let live_bgp = g.antijoin(live_bgp0, down_device);
    let live_bgp_keys = g.map(live_bgp, |kv| kv.key().clone());
    let nbr_by_key = g.map(bgp_neighbor, |r| {
        Value::kv(
            Value::tuple(vec![r.field(0).clone(), r.field(1).clone()]),
            Value::tuple(vec![
                r.field(2).clone(),
                r.field(3).clone(),
                r.field(4).clone(),
            ]),
        )
    });
    let adj_for_bgp = g.map(adjacency, |r| {
        Value::kv(
            Value::tuple(vec![r.field(0).clone(), r.field(4).clone()]),
            Value::tuple(vec![
                r.field(1).clone(),
                r.field(2).clone(),
                r.field(5).clone(),
            ]),
        )
    });
    // (dev, (peer_addr, remote_as, imp, via_if, peer_dev, my_addr))
    let s0 = g.join(nbr_by_key, adj_for_bgp, |k, nbr, adj| {
        Value::kv(
            k.field(0).clone(),
            Value::tuple(vec![
                k.field(1).clone(),
                nbr.field(0).clone(),
                nbr.field(1).clone(),
                adj.field(0).clone(),
                adj.field(1).clone(),
                adj.field(2).clone(),
            ]),
        )
    });
    let s1 = g.join(s0, live_bgp, |dev, s, proc| {
        Value::kv(
            s.field(4).clone(), // peer_dev
            Value::tuple(vec![
                dev.clone(),
                s.field(0).clone(),    // peer_addr
                s.field(1).clone(),    // remote_as
                s.field(2).clone(),    // import name
                s.field(3).clone(),    // via_if
                s.field(5).clone(),    // my_addr
                proc.field(0).clone(), // my_asn
                proc.field(1).clone(), // my_rid
            ]),
        )
    });
    let s2 = g.join(s1, live_bgp, |peer_dev, s, pproc| {
        if s.field(2).as_u32() != pproc.field(0).as_u32() {
            return Value::Unit; // remote-as mismatch: no session
        }
        Value::kv(
            Value::tuple(vec![peer_dev.clone(), s.field(5).clone()]),
            Value::tuple(vec![
                s.field(0).clone(),                                          // dev
                peer_dev.clone(),                                            // peer_dev
                s.field(1).clone(),                                          // peer_addr
                s.field(4).clone(),                                          // via_if
                Value::Bool(s.field(6).as_u32() != pproc.field(0).as_u32()), // ebgp
                s.field(6).clone(),                                          // my_asn
                pproc.field(0).clone(),                                      // peer_asn
                pproc.field(1).clone(),                                      // peer_rid
                s.field(3).clone(),                                          // import name
            ]),
        )
    });
    let s2f = g.filter(s2, |r| *r != Value::Unit);
    // Reciprocal neighbor statement at the peer; captures peer's export.
    // Session rows: (dev, peer_dev, peer_addr, via_if, ebgp, my_asn,
    //                peer_asn, peer_rid, import_name, peer_export_name)
    let s3 = g.join(s2f, nbr_by_key, |_, s, n2| {
        if n2.field(0).as_u32() != s.field(5).as_u32() {
            return Value::Unit; // peer's remote-as must be our asn
        }
        let mut fields: Vec<Value> = s.as_tuple().unwrap().to_vec();
        fields.push(n2.field(2).clone());
        Value::tuple(fields)
    });
    let sessions_raw = g.filter(s3, |r| *r != Value::Unit);
    // Resolve both policies to encoded maps (import at dev, export at peer).
    let sessions_imp = attach_policy(&mut g, sessions_raw, rm_kv, rm_keys, 0, 8);
    let sessions_full = attach_policy(&mut g, sessions_imp, rm_kv, rm_keys, 1, 9);

    // Fixed candidates: originated + external.
    let conn_keys = g.map(up_iface, |r| {
        Value::tuple(vec![r.field(0).clone(), r.field(2).clone()])
    });
    let static_keys = g.map(live_static, |r| {
        Value::tuple(vec![r.field(0).clone(), r.field(1).clone()])
    });
    let backing = g.concat(&[conn_keys, static_keys]);
    let net_kv = g.map(bgp_network, |r| Value::kv(r.clone(), Value::Unit));
    let net_backed = g.semijoin(net_kv, backing);
    let net_by_dev = g.map(net_backed, |kv| {
        Value::kv(kv.key().field(0).clone(), kv.key().field(1).clone())
    });
    let net_live = g.semijoin(net_by_dev, live_bgp_keys);
    let orig_cand = g.map(net_live, |kv| {
        let prefix = dec_prefix(kv.payload());
        Value::kv(
            Value::tuple(vec![kv.key().clone(), kv.payload().clone()]),
            enc_bgp_route(&RouteAttrs::originated(prefix), &BgpSource::Originated),
        )
    });
    let ext0 = g.map(external_route, |r| {
        Value::kv(
            Value::tuple(vec![r.field(0).clone(), r.field(1).clone()]),
            r.field(2).clone(),
        )
    });
    let ext1 = g.join(ext0, nbr_by_key, |k, attrs, nbr| {
        // (dev, peer, attrs, import_name)
        Value::kv(
            k.field(0).clone(),
            Value::tuple(vec![
                k.field(1).clone(),
                attrs.clone(),
                nbr.field(1).clone(),
            ]),
        )
    });
    let ext2 = g.join(ext1, live_bgp, |dev, e, proc| {
        Value::tuple(vec![
            dev.clone(),
            e.field(0).clone(),
            e.field(1).clone(),
            e.field(2).clone(),
            proc.field(0).clone(),
        ])
    });
    let ext3 = attach_policy(&mut g, ext2, rm_kv, rm_keys, 0, 3);
    let ext_cand = g.flat_map(ext3, |r| {
        let my_asn = r.field(4).as_u32();
        let mut attrs = dec_attrs(r.field(2));
        if attrs.as_path_contains(my_asn) {
            return vec![];
        }
        attrs.local_pref = 100;
        let import = dec_route_map(r.field(3));
        let Some(attrs) = import.evaluate(&attrs) else {
            return vec![];
        };
        let peer = Ipv4Addr(r.field(1).as_u32());
        vec![Value::kv(
            Value::tuple(vec![r.field(0).clone(), enc_prefix(attrs.prefix)]),
            enc_bgp_route(&attrs, &BgpSource::External { peer }),
        )]
    });
    let fixed = g.concat(&[orig_cand, ext_cand]);

    // Best-path propagation fixpoint.
    let best = g.iterate("bgp-best", |g, s| {
        let fixed = g.enter(s, fixed);
        let sessions = g.enter(s, sessions_full);
        let sess_by_peer = g.map(sessions, |r| Value::kv(r.field(1).clone(), r.clone()));
        let init = g.reduce(fixed, aggregates::best_by(bgp_route_cmp));
        let var = g.variable(s, "best", init);
        let by_owner = g.map(var, |kv| {
            Value::kv(
                kv.key().field(0).clone(),
                Value::tuple(vec![kv.key().field(1).clone(), kv.payload().clone()]),
            )
        });
        let learned0 = g.join(by_owner, sess_by_peer, |_, pr, sess| learn_route(pr, sess));
        let learned = g.filter(learned0, |r| *r != Value::Unit);
        let cand_all = g.concat(&[fixed, learned]);
        let next = g.reduce(cand_all, aggregates::best_by(bgp_route_cmp));
        g.connect(var, next);
        g.leave(s, next)
    });

    // BGP RIB candidates.
    let bgp_sess_cand = g.flat_map(best, |kv| {
        let (_, src) = dec_bgp_route(kv.payload());
        match src {
            BgpSource::Session {
                peer_device,
                ebgp,
                via_iface,
                ..
            } => {
                let proto = if ebgp { PROTO_BGP_E } else { PROTO_BGP_I };
                let ad = if ebgp { 20 } else { 200 };
                vec![Value::kv(
                    kv.key().clone(),
                    cand(
                        ad,
                        0,
                        proto,
                        forward_device(&Value::str(&via_iface), &Value::str(&peer_device)),
                    ),
                )]
            }
            _ => vec![],
        }
    });
    let bgp_ext0 = g.flat_map(best, |kv| {
        let (_, src) = dec_bgp_route(kv.payload());
        match src {
            BgpSource::External { peer } => vec![Value::kv(
                kv.key().field(0).clone(),
                Value::tuple(vec![kv.key().field(1).clone(), Value::U32(peer.0)]),
            )],
            _ => vec![],
        }
    });
    let bgp_ext1 = g.join(bgp_ext0, up_iface_by_dev, |dev, pp, ifr| {
        let x = Ipv4Addr(pp.field(1).as_u32());
        let ipfx = dec_prefix(ifr.field(2));
        if ipfx.contains(x) {
            Value::kv(
                Value::tuple(vec![dev.clone(), pp.field(0).clone(), pp.field(1).clone()]),
                Value::tuple(vec![ifr.field(1).clone(), Value::U32(ipfx.len() as u32)]),
            )
        } else {
            Value::Unit
        }
    });
    let bgp_ext2 = g.filter(bgp_ext1, |r| *r != Value::Unit);
    let bgp_ext3 = g.reduce(bgp_ext2, aggregates::best_by(iface_choice_cmp));
    let bgp_ext_cand = g.map(bgp_ext3, |kv| {
        Value::kv(
            Value::tuple(vec![kv.key().field(0).clone(), kv.key().field(1).clone()]),
            cand(20, 0, PROTO_BGP_E, forward_external(kv.payload().field(0))),
        )
    });

    // ------------------------------------------------------- RIB/FIB merge
    let all_cand = g.concat(&[
        conn_cand,
        discard_cand,
        st_dev_cand,
        st_ext_cand,
        ospf_cand,
        bgp_sess_cand,
        bgp_ext_cand,
    ]);
    let rib_winners = g.reduce(all_cand, aggregates::all_best_by(rib_cmp));
    let rib_rows = g.map(rib_winners, |kv| {
        let c = kv.payload();
        Value::tuple(vec![
            kv.key().field(0).clone(),
            kv.key().field(1).clone(),
            c.field(2).clone(),
            c.field(1).clone(),
            c.field(3).clone(),
        ])
    });
    let fib_rows0 = g.map(rib_winners, |kv| {
        Value::tuple(vec![
            kv.key().field(0).clone(),
            kv.key().field(1).clone(),
            kv.payload().field(3).clone(),
        ])
    });
    let fib_rows = g.distinct(fib_rows0);
    let rib = g.output("rib", rib_rows);
    let fib = g.output("fib", fib_rows);

    (g.build(), CpHandles { inputs, rib, fib })
}

/// The learned-route transfer function: peer's best route crosses the
/// session `(peer_dev -> dev)` applying export policy, eBGP prepend +
/// local-pref reset + loop check, then import policy. Returns `Unit` when
/// the route is filtered.
///
/// Session row layout: `(dev, peer_dev, peer_addr, via_if, ebgp, my_asn,
/// peer_asn, peer_rid, import_map, peer_export_map)`.
fn learn_route(prefix_route: &Value, sess: &Value) -> Value {
    let (attrs, src) = dec_bgp_route(prefix_route.field(1));
    let dev = sess.field(0);
    let ebgp = sess.field(4).as_bool();
    // Split horizon: never advertise a route back to its source.
    if let BgpSource::Session { peer_device, .. } = &src {
        if peer_device.as_str() == dev.as_str() {
            return Value::Unit;
        }
    }
    // No iBGP reflection.
    if !ebgp {
        if let BgpSource::Session { ebgp: false, .. } = &src {
            return Value::Unit;
        }
    }
    let export = dec_route_map(sess.field(9));
    let Some(mut attrs) = export.evaluate(&attrs) else {
        return Value::Unit;
    };
    let my_asn = sess.field(5).as_u32();
    if ebgp {
        attrs = attrs.prepend(sess.field(6).as_u32());
        attrs.local_pref = 100;
        if attrs.as_path_contains(my_asn) {
            return Value::Unit;
        }
    }
    let import = dec_route_map(sess.field(8));
    let Some(attrs) = import.evaluate(&attrs) else {
        return Value::Unit;
    };
    let source = BgpSource::Session {
        peer_device: sess.field(1).as_str().to_string(),
        peer_addr: Ipv4Addr(sess.field(2).as_u32()),
        ebgp,
        peer_router_id: sess.field(7).as_u32(),
        via_iface: sess.field(3).as_str().to_string(),
    };
    Value::kv(
        Value::tuple(vec![dev.clone(), enc_prefix(attrs.prefix)]),
        enc_bgp_route(&attrs, &source),
    )
}
