//! # control-plane — differential and reference control-plane simulation
//!
//! Simulates BGP/OSPF/static routing for a [`net_model::Snapshot`] and —
//! the point of the reproduction — maintains the result *incrementally*
//! under configuration and environment changes.
//!
//! Two interchangeable simulators share one set of semantics and output
//! types:
//!
//! * [`CpEngine`] — the **differential** simulator (the paper's approach):
//!   routing encoded as an incremental Datalog program over `ddflow`;
//!   changes become input deltas and only affected routes recompute.
//! * [`reference::simulate`] — the **from-scratch** simulator (the
//!   Batfish-style baseline and test oracle): Dijkstra + synchronous BGP
//!   rounds over the whole snapshot.
//!
//! Both emit the same [`RibEntry`]/[`FibEntry`] rows, chosen by the same
//! decision-process comparator, so their outputs are directly comparable
//! (and are compared, extensively, in the test suite).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod engine;
pub mod reference;
pub mod relations;
pub mod rules;
pub mod types;

pub use engine::{CpDelta, CpEngine, CpError};
pub use reference::{simulate, SimError, SimResult};
pub use types::{BgpSource, FibAction, FibEntry, NextDevice, Proto, RibEntry};
