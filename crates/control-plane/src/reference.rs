//! Reference (from-scratch) control-plane simulator.
//!
//! Direct implementations of the protocol semantics: Dijkstra for OSPF,
//! synchronous-round (Jacobi) iteration for BGP best-path propagation,
//! administrative-distance RIB merge, FIB compilation. It serves two roles:
//!
//! 1. the **baseline** of the evaluation ("simulate both snapshots from
//!    scratch and diff", the Batfish workflow), and
//! 2. the **test oracle** the differential simulator is checked against.
//!
//! The semantics here are normative; `rules.rs` encodes the same
//! definitions as an incremental Datalog program (see DESIGN.md §4 for the
//! shared conventions: next-hop-self on all sessions, split horizon, no
//! iBGP reflection, undefined route-map references behave as permit-all).

use crate::encode::{bgp_route_cmp, enc_bgp_route};
use crate::types::{BgpSource, FibAction, FibEntry, NextDevice, Proto, RibEntry};
use ddflow::Value;
use net_model::{Ipv4Addr, Ipv4Prefix, NextHop, RouteAttrs, RouteMap, Snapshot};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet};

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// BGP did not converge within the round bound (policy dispute).
    BgpDivergence {
        /// Rounds executed before giving up.
        rounds: u32,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BgpDivergence { rounds } => {
                write!(f, "BGP did not converge within {rounds} rounds")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Control-plane simulation output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimResult {
    /// Installed routes (post best-path selection and AD merge).
    pub rib: BTreeSet<RibEntry>,
    /// Forwarding entries (the RIB projected to forwarding actions).
    pub fib: BTreeSet<FibEntry>,
}

/// One live adjacency: `via_iface` on `device` reaches `peer_device`, whose
/// facing interface owns `peer_addr`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Adjacency {
    device: String,
    via_iface: String,
    peer_device: String,
    peer_iface: String,
    peer_addr: Ipv4Addr,
}

/// Precomputed liveness view of a snapshot.
struct LiveView<'a> {
    snap: &'a Snapshot,
    /// Up interfaces: (device, iface) present here are usable.
    up_ifaces: BTreeSet<(String, String)>,
    /// Directed adjacencies over up links.
    adjacencies: Vec<Adjacency>,
}

impl<'a> LiveView<'a> {
    fn new(snap: &'a Snapshot) -> Self {
        let mut linked: HashSet<(String, String)> = HashSet::new();
        for l in &snap.links {
            linked.insert((l.a.device.clone(), l.a.iface.clone()));
            linked.insert((l.b.device.clone(), l.b.iface.clone()));
        }
        let mut up_ifaces = BTreeSet::new();
        let mut adjacencies = Vec::new();
        for l in snap.up_links() {
            for (me, other) in [(&l.a, &l.b), (&l.b, &l.a)] {
                let peer_addr = snap
                    .devices
                    .get(&other.device)
                    .and_then(|dc| dc.interfaces.get(&other.iface))
                    .map(|ic| ic.addr);
                if let Some(peer_addr) = peer_addr {
                    adjacencies.push(Adjacency {
                        device: me.device.clone(),
                        via_iface: me.iface.clone(),
                        peer_device: other.device.clone(),
                        peer_iface: other.iface.clone(),
                        peer_addr,
                    });
                }
                up_ifaces.insert((me.device.clone(), me.iface.clone()));
            }
        }
        // Interfaces with no link at all are host-facing and count as up
        // (when their device is up).
        for (dev, dc) in &snap.devices {
            if snap.environment.down_devices.contains(dev) {
                continue;
            }
            for ifname in dc.interfaces.keys() {
                if !linked.contains(&(dev.clone(), ifname.clone())) {
                    up_ifaces.insert((dev.clone(), ifname.clone()));
                }
            }
        }
        // Down devices contribute no up interfaces even for linked ifaces
        // (up_links already excludes them).
        LiveView {
            snap,
            up_ifaces,
            adjacencies,
        }
    }

    fn iface_up(&self, dev: &str, iface: &str) -> bool {
        self.up_ifaces
            .contains(&(dev.to_string(), iface.to_string()))
    }

    /// Finds the up interface of `dev` whose subnet contains `ip`, plus the
    /// adjacent device owning exactly `ip` (if any).
    fn resolve_next_hop(&self, dev: &str, ip: Ipv4Addr) -> Option<(String, NextDevice)> {
        let dc = self.snap.devices.get(dev)?;
        let (ifname, _) = dc
            .interfaces
            .iter()
            .find(|(name, ic)| self.iface_up(dev, name) && ic.prefix.contains(ip))?;
        let next = self
            .adjacencies
            .iter()
            .find(|a| a.device == dev && &a.via_iface == ifname && a.peer_addr == ip)
            .map(|a| NextDevice::Device(a.peer_device.clone()))
            .unwrap_or(NextDevice::External);
        Some((ifname.clone(), next))
    }
}

/// Looks up a route map by optional name; `None` and *undefined* references
/// both behave as permit-all (run `Snapshot::validate` to catch the latter).
fn route_map<'a>(
    dc: &'a net_model::DeviceConfig,
    name: &Option<String>,
    permit_all: &'a RouteMap,
) -> &'a RouteMap {
    match name {
        None => permit_all,
        Some(n) => dc.route_maps.get(n).unwrap_or(permit_all),
    }
}

/// An established BGP session, from `device`'s point of view.
#[derive(Debug, Clone)]
struct Session {
    device: String,
    peer_device: String,
    peer_addr: Ipv4Addr,
    via_iface: String,
    ebgp: bool,
    peer_asn: u32,
    peer_router_id: u32,
    /// Import policy name at `device`.
    import: Option<String>,
    /// Export policy name at the *peer* (applied before advertising to us).
    peer_export: Option<String>,
}

fn sessions(view: &LiveView) -> Vec<Session> {
    let snap = view.snap;
    let mut out = Vec::new();
    for adj in &view.adjacencies {
        let Some(dc) = snap.devices.get(&adj.device) else {
            continue;
        };
        let Some(pc) = snap.devices.get(&adj.peer_device) else {
            continue;
        };
        let (Some(my_bgp), Some(peer_bgp)) = (&dc.bgp, &pc.bgp) else {
            continue;
        };
        let my_addr = dc
            .interfaces
            .get(&adj.via_iface)
            .map(|ic| ic.addr)
            .expect("adjacency interface exists");
        // My neighbor statement pointing at the peer's facing address.
        let Some(n1) = my_bgp
            .neighbors
            .iter()
            .find(|n| n.peer == adj.peer_addr && n.remote_as == peer_bgp.asn)
        else {
            continue;
        };
        // The reciprocal statement at the peer.
        let Some(n2) = peer_bgp
            .neighbors
            .iter()
            .find(|n| n.peer == my_addr && n.remote_as == my_bgp.asn)
        else {
            continue;
        };
        out.push(Session {
            device: adj.device.clone(),
            peer_device: adj.peer_device.clone(),
            peer_addr: adj.peer_addr,
            via_iface: adj.via_iface.clone(),
            ebgp: my_bgp.asn != peer_bgp.asn,
            peer_asn: peer_bgp.asn,
            peer_router_id: peer_bgp.router_id,
            import: n1.import_policy.clone(),
            peer_export: n2.export_policy.clone(),
        });
    }
    out
}

/// One OSPF route: `(device, prefix, total_cost, ecmp next hops)` where a
/// next hop is `(iface, next_device)`.
type OspfRoute = (String, Ipv4Prefix, u64, BTreeSet<(String, String)>);

/// OSPF computation: per-device routes; see [`OspfRoute`].
fn ospf_routes(view: &LiveView) -> Vec<OspfRoute> {
    let snap = view.snap;
    // Directed OSPF adjacency graph: edges (a -> b, cost of a's egress
    // iface, a's iface name). Both ends must run active OSPF in one area.
    struct Edge {
        to: String,
        cost: u64,
        iface: String,
    }
    let mut graph: BTreeMap<String, Vec<Edge>> = BTreeMap::new();
    let ospf_cfg = |dev: &str, iface: &str| {
        snap.devices
            .get(dev)
            .and_then(|dc| dc.interfaces.get(iface))
            .and_then(|ic| ic.ospf.as_ref())
    };
    for adj in &view.adjacencies {
        let (Some(mine), Some(theirs)) = (
            ospf_cfg(&adj.device, &adj.via_iface),
            ospf_cfg(&adj.peer_device, &adj.peer_iface),
        ) else {
            continue;
        };
        if mine.passive || theirs.passive || mine.area != theirs.area {
            continue;
        }
        graph.entry(adj.device.clone()).or_default().push(Edge {
            to: adj.peer_device.clone(),
            cost: mine.cost as u64,
            iface: adj.via_iface.clone(),
        });
        graph.entry(adj.peer_device.clone()).or_default();
    }
    // Advertisements: every up OSPF interface (active or passive)
    // advertises its prefix at its cost.
    let mut advertised: BTreeMap<String, Vec<(Ipv4Prefix, u64)>> = BTreeMap::new();
    for (dev, dc) in &snap.devices {
        for (ifname, ic) in &dc.interfaces {
            if !view.iface_up(dev, ifname) {
                continue;
            }
            if let Some(o) = &ic.ospf {
                advertised
                    .entry(dev.clone())
                    .or_default()
                    .push((ic.prefix, o.cost as u64));
            }
        }
    }
    // All OSPF participants (adjacency members or advertisers).
    let mut routers: BTreeSet<String> = graph.keys().cloned().collect();
    routers.extend(advertised.keys().cloned());

    let mut out = Vec::new();
    for src in &routers {
        // Dijkstra from src.
        let mut dist: HashMap<&str, u64> = HashMap::new();
        let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, &str)> = BinaryHeap::new();
        dist.insert(src, 0);
        heap.push((std::cmp::Reverse(0), src));
        while let Some((std::cmp::Reverse(d), node)) = heap.pop() {
            if dist.get(node).copied() != Some(d) {
                continue;
            }
            if let Some(edges) = graph.get(node) {
                for e in edges {
                    let nd = d + e.cost;
                    if dist.get(e.to.as_str()).is_none_or(|&old| nd < old) {
                        dist.insert(e.to.as_str(), nd);
                        heap.push((std::cmp::Reverse(nd), e.to.as_str()));
                    }
                }
            }
        }
        // ECMP first hops toward each target: neighbors n with
        // cost(src→n) + dist(n, t) == dist(src, t). Dijkstra gives
        // dist-from-src; for first hops we need dist from n to t, so run
        // relaxation per target via reverse reasoning: recompute dist from
        // every node (memoized below).
        // (Small networks: all-pairs via repeated Dijkstra is fine.)
        let _ = &dist;
        out.push((src.clone(), dist));
    }
    // Convert per-source distances into a map for first-hop extraction.
    let all_dist: HashMap<String, HashMap<String, u64>> = out
        .into_iter()
        .map(|(s, m)| (s, m.into_iter().map(|(k, v)| (k.to_string(), v)).collect()))
        .collect();

    let mut routes = Vec::new();
    for src in &routers {
        let dist_from_src = &all_dist[src];
        // Candidate totals per prefix: dist(src, t) + advertised cost at t.
        let mut best: BTreeMap<Ipv4Prefix, u64> = BTreeMap::new();
        for (t, advs) in &advertised {
            if t == src {
                continue; // own prefixes are connected routes
            }
            let Some(&d) = dist_from_src.get(t) else {
                continue;
            };
            for &(p, c) in advs {
                let total = d + c;
                best.entry(p)
                    .and_modify(|b| *b = (*b).min(total))
                    .or_insert(total);
            }
        }
        for (&p, &total) in &best {
            // ECMP next hops: neighbors n of src on a shortest route to
            // some advertiser t achieving `total`.
            let mut nhs: BTreeSet<(String, String)> = BTreeSet::new();
            if let Some(edges) = graph.get(src) {
                for e in edges {
                    let Some(dist_from_n) = all_dist.get(&e.to) else {
                        continue;
                    };
                    for (t, advs) in &advertised {
                        if t == src {
                            continue;
                        }
                        let Some(&dn) = dist_from_n.get(t) else {
                            continue;
                        };
                        for &(pp, c) in advs {
                            if pp == p && e.cost + dn + c == total {
                                nhs.insert((e.iface.clone(), e.to.clone()));
                            }
                        }
                    }
                }
            }
            if !nhs.is_empty() {
                routes.push((src.clone(), p, total, nhs));
            }
        }
    }
    routes
}

/// BGP best routes per `(device, prefix)`, as encoded route values (see
/// [`crate::encode::enc_bgp_route`]).
fn bgp_best(
    view: &LiveView,
    max_rounds: u32,
) -> Result<BTreeMap<(String, Ipv4Prefix), Value>, SimError> {
    let snap = view.snap;
    let permit_all = RouteMap::permit_all();
    let sess = sessions(view);
    // Static candidate sets (don't change across rounds).
    let mut fixed: BTreeMap<(String, Ipv4Prefix), Vec<Value>> = BTreeMap::new();
    for (dev, dc) in &snap.devices {
        if snap.environment.down_devices.contains(dev) {
            continue;
        }
        let Some(bgp) = &dc.bgp else { continue };
        // Originated: network statements backed by a connected or static
        // route for exactly that prefix.
        for &p in &bgp.networks {
            let connected = dc
                .interfaces
                .iter()
                .any(|(n, ic)| ic.prefix == p && view.iface_up(dev, n));
            let static_backed = dc.static_routes.iter().any(|r| r.prefix == p);
            if connected || static_backed {
                let attrs = RouteAttrs::originated(p);
                fixed
                    .entry((dev.clone(), p))
                    .or_default()
                    .push(enc_bgp_route(&attrs, &BgpSource::Originated));
            }
        }
        // External announcements heard on configured neighbors.
        for e in &snap.environment.external_routes {
            if &e.device != dev {
                continue;
            }
            if !bgp.neighbors.iter().any(|n| n.peer == e.peer) {
                continue;
            }
            if e.attrs.as_path_contains(bgp.asn) {
                continue; // loop prevention
            }
            let mut attrs = e.attrs.clone();
            attrs.local_pref = 100; // not transitive across eBGP
            let import = bgp
                .neighbors
                .iter()
                .find(|n| n.peer == e.peer)
                .and_then(|n| n.import_policy.clone());
            let Some(attrs) = route_map(dc, &import, &permit_all).evaluate(&attrs) else {
                continue;
            };
            fixed
                .entry((dev.clone(), attrs.prefix))
                .or_default()
                .push(enc_bgp_route(&attrs, &BgpSource::External { peer: e.peer }));
        }
    }
    // Jacobi iteration to a fixpoint (mirrors the differential scope).
    let mut best: BTreeMap<(String, Ipv4Prefix), Value> = BTreeMap::new();
    for round in 0..max_rounds {
        let mut cand: BTreeMap<(String, Ipv4Prefix), Vec<Value>> = fixed.clone();
        for s in &sess {
            let dc = &snap.devices[&s.device];
            let pc = &snap.devices[&s.peer_device];
            let my_asn = dc.bgp.as_ref().expect("session implies bgp").asn;
            for ((owner, prefix), route) in &best {
                if owner != &s.peer_device {
                    continue;
                }
                let (attrs, src) = crate::encode::dec_bgp_route(route);
                // Split horizon: never advertise back to the route's source.
                if let BgpSource::Session { peer_device, .. } = &src {
                    if peer_device == &s.device {
                        continue;
                    }
                }
                // No iBGP reflection: iBGP-learned routes don't go to iBGP.
                if !s.ebgp {
                    if let BgpSource::Session { ebgp: false, .. } = &src {
                        continue;
                    }
                }
                // Peer's export policy toward us.
                let Some(mut attrs) = route_map(pc, &s.peer_export, &permit_all).evaluate(&attrs)
                else {
                    continue;
                };
                if s.ebgp {
                    attrs = attrs.prepend(s.peer_asn);
                    attrs.local_pref = 100;
                    if attrs.as_path_contains(my_asn) {
                        continue; // receiver-side loop prevention
                    }
                }
                // Our import policy.
                let Some(attrs) = route_map(dc, &s.import, &permit_all).evaluate(&attrs) else {
                    continue;
                };
                let source = BgpSource::Session {
                    peer_device: s.peer_device.clone(),
                    peer_addr: s.peer_addr,
                    ebgp: s.ebgp,
                    peer_router_id: s.peer_router_id,
                    via_iface: s.via_iface.clone(),
                };
                cand.entry((s.device.clone(), *prefix))
                    .or_default()
                    .push(enc_bgp_route(&attrs, &source));
            }
        }
        let mut next: BTreeMap<(String, Ipv4Prefix), Value> = BTreeMap::new();
        for (key, mut routes) in cand {
            routes.sort_by(bgp_route_cmp);
            next.insert(key, routes.into_iter().next().expect("nonempty"));
        }
        if next == best {
            return Ok(best);
        }
        best = next;
        let _ = round;
    }
    Err(SimError::BgpDivergence { rounds: max_rounds })
}

/// Default BGP round bound used by [`simulate`].
pub const DEFAULT_MAX_ROUNDS: u32 = 1_000;

/// Simulates the control plane of a snapshot from scratch.
pub fn simulate(snap: &Snapshot) -> Result<SimResult, SimError> {
    simulate_bounded(snap, DEFAULT_MAX_ROUNDS)
}

/// [`simulate`] with an explicit BGP round bound.
pub fn simulate_bounded(snap: &Snapshot, max_rounds: u32) -> Result<SimResult, SimError> {
    let view = LiveView::new(snap);
    let permit = |p: Proto| p.admin_distance();

    // Candidates per (device, prefix): (ad, metric, proto, action).
    type CandMap = BTreeMap<(String, Ipv4Prefix), Vec<(u8, u64, Proto, FibAction)>>;
    let mut cands: CandMap = BTreeMap::new();

    // Connected.
    for (dev, dc) in &snap.devices {
        for (ifname, ic) in &dc.interfaces {
            if !view.iface_up(dev, ifname) {
                continue;
            }
            cands.entry((dev.clone(), ic.prefix)).or_default().push((
                permit(Proto::Connected),
                0,
                Proto::Connected,
                FibAction::Deliver {
                    iface: ifname.clone(),
                },
            ));
        }
    }
    // Static.
    for (dev, dc) in &snap.devices {
        if snap.environment.down_devices.contains(dev) {
            continue;
        }
        for r in &dc.static_routes {
            let action = match r.next_hop {
                NextHop::Discard => Some(FibAction::Drop),
                NextHop::Ip(x) => view
                    .resolve_next_hop(dev, x)
                    .map(|(iface, next)| FibAction::Forward { iface, next }),
            };
            if let Some(action) = action {
                cands.entry((dev.clone(), r.prefix)).or_default().push((
                    r.admin_distance,
                    0,
                    Proto::Static,
                    action,
                ));
            }
        }
    }
    // OSPF.
    for (dev, prefix, metric, nhs) in ospf_routes(&view) {
        for (iface, next) in nhs {
            cands.entry((dev.clone(), prefix)).or_default().push((
                permit(Proto::Ospf),
                metric,
                Proto::Ospf,
                FibAction::Forward {
                    iface,
                    next: NextDevice::Device(next),
                },
            ));
        }
    }
    // BGP.
    for ((dev, prefix), route) in bgp_best(&view, max_rounds)? {
        let (_, src) = crate::encode::dec_bgp_route(&route);
        match src {
            BgpSource::Originated => {} // local prefix: connected/static covers it
            BgpSource::External { peer } => {
                if let Some((iface, _)) = view.resolve_next_hop(&dev, peer) {
                    cands.entry((dev.clone(), prefix)).or_default().push((
                        permit(Proto::BgpExternal),
                        0,
                        Proto::BgpExternal,
                        FibAction::Forward {
                            iface,
                            next: NextDevice::External,
                        },
                    ));
                }
            }
            BgpSource::Session {
                peer_device,
                ebgp,
                via_iface,
                ..
            } => {
                let proto = if ebgp {
                    Proto::BgpExternal
                } else {
                    Proto::BgpInternal
                };
                cands.entry((dev.clone(), prefix)).or_default().push((
                    permit(proto),
                    0,
                    proto,
                    FibAction::Forward {
                        iface: via_iface,
                        next: NextDevice::Device(peer_device),
                    },
                ));
            }
        }
    }

    // AD merge: keep all candidates minimal under (ad, metric).
    let mut result = SimResult::default();
    for ((dev, prefix), entries) in cands {
        let best = entries
            .iter()
            .map(|(ad, metric, _, _)| (*ad, *metric))
            .min()
            .expect("nonempty");
        for (ad, metric, proto, action) in entries {
            if (ad, metric) != best {
                continue;
            }
            result.rib.insert(RibEntry {
                device: dev.clone(),
                prefix,
                proto,
                metric,
                action: action.clone(),
            });
            result.fib.insert(FibEntry {
                device: dev.clone(),
                prefix,
                action,
            });
        }
    }
    Ok(result)
}
