//! Differential control-plane engine: the stateful wrapper around the
//! rules program that tracks a snapshot mirror and turns [`ChangeSet`]s
//! into incremental RIB/FIB deltas.

use crate::relations::{change_deltas, shard_facts, snapshot_facts, Fact};
use crate::rules::{build_program, CpHandles};
use crate::types::{FibEntry, RibEntry};
use ddflow::{CommitStats, Config, DdError, Diff, Runtime};
use net_model::{ApplyError, ChangeSet, ShardPlan, Snapshot};

/// Error from the differential control-plane engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CpError {
    /// A change referenced a missing element.
    Apply(ApplyError),
    /// A routing fixpoint failed to converge (e.g. a BGP policy dispute).
    Divergence(String),
}

impl std::fmt::Display for CpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpError::Apply(e) => write!(f, "cannot apply change: {e}"),
            CpError::Divergence(s) => write!(f, "routing did not converge: {s}"),
        }
    }
}

impl std::error::Error for CpError {}

impl From<ApplyError> for CpError {
    fn from(e: ApplyError) -> Self {
        CpError::Apply(e)
    }
}

impl From<DdError> for CpError {
    fn from(e: DdError) -> Self {
        CpError::Divergence(e.to_string())
    }
}

/// Incremental RIB/FIB changes produced by one [`CpEngine::apply`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CpDelta {
    /// Route changes: `+1` installed, `-1` withdrawn.
    pub rib: Vec<(RibEntry, Diff)>,
    /// Forwarding changes: `+1` added, `-1` removed.
    pub fib: Vec<(FibEntry, Diff)>,
    /// Engine statistics for the commit.
    pub stats: CommitStats,
}

/// The differential control-plane simulator. Construction simulates the
/// base snapshot; each [`CpEngine::apply`] incrementally updates the
/// simulation and reports exactly what changed.
pub struct CpEngine {
    runtime: Runtime,
    handles: CpHandles,
    snapshot: Snapshot,
}

impl CpEngine {
    /// Builds the engine and runs the initial simulation of `snapshot`.
    pub fn new(snapshot: Snapshot) -> Result<Self, CpError> {
        Self::with_config(snapshot, Config::default())
    }

    /// [`CpEngine::new`] with an explicit engine configuration (iteration
    /// bounds for divergence detection).
    pub fn with_config(snapshot: Snapshot, config: Config) -> Result<Self, CpError> {
        let (program, handles) = build_program();
        let mut runtime = Runtime::with_config(program, config);
        for (rel, row) in snapshot_facts(&snapshot) {
            let h = handles.inputs[rel];
            runtime.insert(h, row);
        }
        runtime.commit()?;
        Ok(CpEngine {
            runtime,
            handles,
            snapshot,
        })
    }

    /// Sharded bring-up: fact encoding (per-device rows plus each
    /// shard's slice of the global environment) runs on one scoped
    /// worker thread per shard of `plan`, concurrently with rule
    /// compilation on the calling thread; the encoded rows are then fed
    /// into a single runtime and drained through one merged commit, so
    /// the resulting engine state is identical to [`CpEngine::new`]'s —
    /// the union of shard fact sets is a permutation of the unsharded
    /// fact set, and the commit consolidates input order away.
    pub fn sharded(snapshot: Snapshot, config: Config, plan: &ShardPlan) -> Result<Self, CpError> {
        if plan.shard_count() <= 1 {
            return Self::with_config(snapshot, config);
        }
        let (program, handles, rows) = std::thread::scope(|s| {
            let workers: Vec<_> = (0..plan.shard_count())
                .map(|i| {
                    let snapshot = &snapshot;
                    s.spawn(move || shard_facts(snapshot, plan, i))
                })
                .collect();
            // Rule compilation overlaps the encoders.
            let (program, handles) = build_program();
            let rows: Vec<Vec<Fact>> = workers
                .into_iter()
                .map(|w| w.join().expect("shard encode worker panicked"))
                .collect();
            (program, handles, rows)
        });
        let mut runtime = Runtime::with_config(program, config);
        for (rel, row) in rows.into_iter().flatten() {
            let h = handles.inputs[rel];
            runtime.insert(h, row);
        }
        runtime.commit()?;
        Ok(CpEngine {
            runtime,
            handles,
            snapshot,
        })
    }

    /// The current snapshot (base snapshot plus all applied change sets).
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Applies a change set incrementally, returning the RIB/FIB deltas.
    ///
    /// Changes are validated against the evolving snapshot first; on error
    /// nothing is applied.
    pub fn apply(&mut self, changes: &ChangeSet) -> Result<CpDelta, CpError> {
        // One snapshot clone per epoch: the mirror advances in place while
        // fact deltas are staged into a local buffer, so an invalid change
        // aborts before anything reaches the runtime and the engine stays
        // untouched. (`change_deltas` is total — unknown references yield
        // no deltas — so staging before validation is safe; a later error
        // simply discards the staged rows. The old path cloned the full
        // snapshot once for validation plus once per change.)
        let mut mirror = self.snapshot.clone();
        let mut staged = Vec::new();
        for change in &changes.changes {
            // Deltas are evaluated against the pre-change mirror state.
            staged.extend(change_deltas(&mirror, change));
            change.apply_to(&mut mirror)?;
        }
        for (rel, row, diff) in staged {
            let h = self.handles.inputs[rel];
            self.runtime.update(h, row, diff);
        }
        let stats = self.runtime.commit()?;
        self.snapshot = mirror;
        // Drain both outputs (clears the delta buffers).
        let rib = self
            .runtime
            .drain(self.handles.rib)
            .into_iter()
            .map(|(v, d)| (crate::encode::dec_rib(&v), d))
            .collect();
        let fib = self
            .runtime
            .drain(self.handles.fib)
            .into_iter()
            .map(|(v, d)| (crate::encode::dec_fib(&v), d))
            .collect();
        Ok(CpDelta { rib, fib, stats })
    }

    /// Current full RIB (decoded).
    pub fn rib(&self) -> Vec<RibEntry> {
        let mut out: Vec<RibEntry> = self
            .runtime
            .output(self.handles.rib)
            .iter()
            .map(|(v, _)| crate::encode::dec_rib(v))
            .collect();
        out.sort();
        out
    }

    /// Current full FIB (decoded).
    pub fn fib(&self) -> Vec<FibEntry> {
        let mut out: Vec<FibEntry> = self
            .runtime
            .output(self.handles.fib)
            .iter()
            .map(|(v, _)| crate::encode::dec_fib(v))
            .collect();
        out.sort();
        out
    }

    /// Clears any pending (not yet drained) output deltas — call after
    /// construction if only deltas of subsequent changes are of interest.
    pub fn drain_initial(&mut self) -> (usize, usize) {
        let r = self.runtime.drain(self.handles.rib).len();
        let f = self.runtime.drain(self.handles.fib).len();
        (r, f)
    }

    /// Tuples held in engine state (working set), for the memory study.
    pub fn state_tuples(&self) -> usize {
        self.runtime.state_tuples()
    }
}
