//! Output types shared by the differential and reference simulators.
//!
//! Both simulators produce the same RIB/FIB representation so that results
//! are directly comparable (the reference simulator doubles as the test
//! oracle and the "from-scratch" baseline of the evaluation).

use net_model::{Ipv4Addr, Ipv4Prefix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Routing protocol that produced a route, with its administrative distance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Proto {
    /// Directly connected subnet (AD 0).
    Connected,
    /// Static route (AD as configured, default 1).
    Static,
    /// eBGP-learned route (AD 20).
    BgpExternal,
    /// OSPF route (AD 110).
    Ospf,
    /// iBGP-learned route (AD 200).
    BgpInternal,
}

impl Proto {
    /// Default administrative distance.
    pub fn admin_distance(self) -> u8 {
        match self {
            Proto::Connected => 0,
            Proto::Static => 1,
            Proto::BgpExternal => 20,
            Proto::Ospf => 110,
            Proto::BgpInternal => 200,
        }
    }
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Proto::Connected => "connected",
            Proto::Static => "static",
            Proto::BgpExternal => "ebgp",
            Proto::Ospf => "ospf",
            Proto::BgpInternal => "ibgp",
        };
        write!(f, "{s}")
    }
}

/// Where a FIB entry sends matching packets next.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum NextDevice {
    /// A modeled device (the other end of the egress link).
    Device(String),
    /// Traffic leaves the modeled network (external peer or host subnet).
    External,
}

/// Forwarding action of one FIB entry.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum FibAction {
    /// Deliver locally: the destination is on this connected subnet.
    Deliver {
        /// Interface whose subnet holds the destination.
        iface: String,
    },
    /// Forward out an interface toward the next device.
    Forward {
        /// Egress interface.
        iface: String,
        /// Next hop.
        next: NextDevice,
    },
    /// Null-route: drop matching packets.
    Drop,
}

/// One FIB entry. A device's forwarding behavior is longest-prefix-match
/// over its entries; equal prefixes with multiple `Forward` entries are
/// ECMP alternatives.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FibEntry {
    /// Owning device.
    pub device: String,
    /// Destination prefix.
    pub prefix: Ipv4Prefix,
    /// Forwarding action.
    pub action: FibAction,
}

impl fmt::Display for FibEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.action {
            FibAction::Deliver { iface } => {
                write!(f, "{}: {} deliver via {iface}", self.device, self.prefix)
            }
            FibAction::Forward { iface, next } => match next {
                NextDevice::Device(d) => {
                    write!(f, "{}: {} -> {d} via {iface}", self.device, self.prefix)
                }
                NextDevice::External => {
                    write!(
                        f,
                        "{}: {} -> external via {iface}",
                        self.device, self.prefix
                    )
                }
            },
            FibAction::Drop => write!(f, "{}: {} drop", self.device, self.prefix),
        }
    }
}

/// One RIB entry: a route installed after best-path selection and
/// administrative-distance comparison (several entries per `(device,
/// prefix)` mean ECMP).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct RibEntry {
    /// Owning device.
    pub device: String,
    /// Destination prefix.
    pub prefix: Ipv4Prefix,
    /// Producing protocol.
    pub proto: Proto,
    /// Protocol metric (OSPF cost; 0 for connected/static/BGP).
    pub metric: u64,
    /// Forwarding action.
    pub action: FibAction,
}

/// Who advertised a BGP route to us (part of best-path tie-breaking).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum BgpSource {
    /// Locally originated via a network statement.
    Originated,
    /// Heard from an unmodeled external peer at this neighbor address.
    External {
        /// Configured neighbor address.
        peer: Ipv4Addr,
    },
    /// Learned from a modeled peer over an established session.
    Session {
        /// Advertising device.
        peer_device: String,
        /// Peer address (their interface address).
        peer_addr: Ipv4Addr,
        /// Whether the session is eBGP.
        ebgp: bool,
        /// Advertiser's router id (tie-breaker).
        peer_router_id: u32,
        /// Our interface toward the peer.
        via_iface: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::pfx;

    #[test]
    fn admin_distances_follow_convention() {
        assert_eq!(Proto::Connected.admin_distance(), 0);
        assert_eq!(Proto::Static.admin_distance(), 1);
        assert_eq!(Proto::BgpExternal.admin_distance(), 20);
        assert_eq!(Proto::Ospf.admin_distance(), 110);
        assert_eq!(Proto::BgpInternal.admin_distance(), 200);
    }

    #[test]
    fn fib_entry_display() {
        let e = FibEntry {
            device: "r1".into(),
            prefix: pfx("10.0.0.0/24"),
            action: FibAction::Forward {
                iface: "eth0".into(),
                next: NextDevice::Device("r2".into()),
            },
        };
        assert_eq!(e.to_string(), "r1: 10.0.0.0/24 -> r2 via eth0");
        let d = FibEntry {
            device: "r1".into(),
            prefix: pfx("0.0.0.0/0"),
            action: FibAction::Drop,
        };
        assert_eq!(d.to_string(), "r1: 0.0.0.0/0 drop");
    }
}
