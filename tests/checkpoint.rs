//! Checkpoint/resume regression net: a session that is checkpointed,
//! "killed" (dropped — all that survives is the artifact's bytes) and
//! resumed must be **observationally identical** to one that never
//! restarted. Three layers of pinning:
//!
//! 1. **Corpus reports** — every checked-in workload replayed half,
//!    checkpointed through the wire format, resumed (sharded), and
//!    replayed to the end must reproduce the pinned report
//!    byte-for-byte.
//! 2. **Pinned service responses** — the corpus service smoke's exact
//!    response bytes (`tests/corpus/service_smoke.expected.dna`) must
//!    come back from a server that crashed and resumed mid-trace. The
//!    CI crash-resume smoke drives the same property through the real
//!    binary with `kill -9`.
//! 3. **Proptest** — checkpoint → resume → remaining epochs ≡
//!    straight-through replay, under randomized epoch boundaries,
//!    retention configs and shard counts 1/2/4.

use dna_io::{
    parse_checkpoint, parse_snapshot, parse_trace, write_checkpoint, write_query, write_report,
    write_response, Query, QueryKind, Report, Response, Trace,
};
use dna_serve::{
    read_artifact, resolve_checkpoint_snapshot, serve_stream, Session, SessionConfig,
    SessionManager,
};
use proptest::prelude::*;
use std::io::Cursor;

struct Workload {
    name: &'static str,
    snapshot: &'static str,
    trace: &'static str,
    report: &'static str,
}

const CORPUS: &[Workload] = &[
    Workload {
        name: "ft4_failures",
        snapshot: include_str!("corpus/ft4_failures.snap.dna"),
        trace: include_str!("corpus/ft4_failures.trace.dna"),
        report: include_str!("corpus/ft4_failures.report.dna"),
    },
    Workload {
        name: "ft6_policy",
        snapshot: include_str!("corpus/ft6_policy.snap.dna"),
        trace: include_str!("corpus/ft6_policy.trace.dna"),
        report: include_str!("corpus/ft6_policy.report.dna"),
    },
    Workload {
        name: "wan16_mixed",
        snapshot: include_str!("corpus/wan16_mixed.snap.dna"),
        trace: include_str!("corpus/wan16_mixed.trace.dna"),
        report: include_str!("corpus/wan16_mixed.report.dna"),
    },
];

/// Round-trips a live session through the wire format the way a real
/// restart does: serialize its checkpoint, drop the session, parse the
/// bytes back, resolve the snapshot, resume. Every checkpoint detail
/// that matters must survive this path — in-memory shortcuts would
/// hide serialization bugs.
fn kill_and_resume(session: Session, server: &SessionConfig) -> Session {
    let text = write_checkpoint(&session.checkpoint_artifact());
    drop(session);
    let ckpt = parse_checkpoint(&text).expect("checkpoint round-trips");
    let snapshot = resolve_checkpoint_snapshot(&ckpt, None).expect("inline snapshot");
    Session::resume(&ckpt, snapshot, server).expect("session resumes")
}

/// Corpus pinning: checkpoint at the half-way epoch, resume with a
/// 2-shard bring-up, replay the rest — the concatenated per-epoch
/// report must equal the checked-in report file byte-for-byte.
#[test]
fn corpus_reports_survive_checkpoint_resume_byte_for_byte() {
    for w in CORPUS {
        let snapshot = parse_snapshot(w.snapshot).expect("corpus snapshot parses");
        let trace = parse_trace(w.trace).expect("corpus trace parses");
        let mid = trace.epochs.len() / 2;
        let config = SessionConfig::default();
        let mut session = Session::open(w.name, snapshot, config.clone()).expect("opens");
        for ep in &trace.epochs[..mid] {
            session
                .ingest(ep)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
        let server = SessionConfig {
            shards: 2,
            ..config
        };
        let mut session = kill_and_resume(session, &server);
        assert_eq!(session.epochs(), mid, "{}: resumed at the boundary", w.name);
        for ep in &trace.epochs[mid..] {
            session
                .ingest(ep)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
        // The retained history now holds every epoch (corpus traces fit
        // the default retention); its diffs are the full report.
        let full = match session.answer(&QueryKind::Report {
            from: 0,
            to: trace.epochs.len(),
        }) {
            Response::Report { epochs } => epochs,
            other => panic!("{}: expected report, got {other:?}", w.name),
        };
        assert_eq!(full.len(), trace.epochs.len(), "{}: full history", w.name);
        let report = Report {
            epochs: full.into_iter().map(|(_, d)| d).collect(),
        };
        assert_eq!(
            write_report(&report),
            w.report,
            "{}: resumed report diverged from the pinned corpus report",
            w.name
        );
    }
}

/// Service pinning: the exact pinned smoke response bytes from a
/// server that crashed after half the trace and resumed. The trace
/// splits into two ingest artifacts (4 + 4 epochs), so the second
/// run's responses are compared artifact-by-artifact against the tail
/// of the pinned file.
#[test]
fn pinned_service_smoke_responses_survive_crash_resume() {
    let snapshot =
        parse_snapshot(include_str!("corpus/ft4_failures.snap.dna")).expect("snapshot parses");
    let trace = parse_trace(include_str!("corpus/ft4_failures.trace.dna")).expect("trace parses");
    let mid = trace.epochs.len() / 2;
    let halves = [
        Trace {
            epochs: trace.epochs[..mid].to_vec(),
        },
        Trace {
            epochs: trace.epochs[mid..].to_vec(),
        },
    ];
    // First life: load, ingest half, "crash".
    let mut mgr = SessionManager::new(SessionConfig::default());
    mgr.open("ft4_failures", snapshot).expect("session opens");
    let mut out = Vec::new();
    serve_stream(
        &mut mgr,
        None,
        &mut Cursor::new(dna_io::write_trace(&halves[0]).into_bytes()),
        &mut out,
    )
    .expect("first life serves");
    let ckpt_text = write_checkpoint(
        &mgr.session("ft4_failures")
            .expect("session lives")
            .checkpoint_artifact(),
    );
    drop(mgr);
    // Second life: a fresh manager resumes from the bytes, ingests the
    // rest, and answers the pinned smoke queries.
    let ckpt = parse_checkpoint(&ckpt_text).expect("checkpoint parses");
    let snapshot = resolve_checkpoint_snapshot(&ckpt, None).expect("inline snapshot");
    let mut mgr = SessionManager::new(SessionConfig::default());
    match mgr.resume_checkpoint(&ckpt, snapshot) {
        Ok(Response::Loaded { session, .. }) => assert_eq!(session, "ft4_failures"),
        other => panic!("expected loaded, got {other:?}"),
    }
    let q = |kind: QueryKind| {
        write_query(&Query {
            session: None,
            kind,
        })
    };
    let input = format!(
        "{}{}{}{}",
        dna_io::write_trace(&halves[1]),
        q(QueryKind::ReachPair {
            src: "edge0_0".into(),
            dst: "edge1_1".into(),
        }),
        q(QueryKind::Blast { last: 8 }),
        q(QueryKind::Report { from: 0, to: 1 }),
    );
    let mut out = Vec::new();
    let summary = serve_stream(
        &mut mgr,
        None,
        &mut Cursor::new(input.into_bytes()),
        &mut out,
    )
    .expect("second life serves");
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.epochs as usize, trace.epochs.len() - mid);
    // Pinned expectations: [ingest, reach, blast, report] responses.
    // The resumed run's ingest response differs (4 epochs, not 8), but
    // its three query responses must match the pinned bytes exactly.
    let artifacts = |bytes: &str| {
        let mut cursor = Cursor::new(bytes.as_bytes().to_vec());
        let mut v = Vec::new();
        while let Some(a) = read_artifact(&mut cursor).expect("framed") {
            v.push(a);
        }
        v
    };
    let expected = artifacts(include_str!("corpus/service_smoke.expected.dna"));
    let got = artifacts(&String::from_utf8(out).expect("utf-8"));
    assert_eq!(expected.len(), 4, "pinned file shape");
    assert_eq!(got.len(), 4);
    assert_eq!(
        &got[1..],
        &expected[1..],
        "resumed query responses diverged from the pinned smoke bytes"
    );
    // And the ingest response accounts for exactly the resumed half.
    match dna_io::parse_response(&got[0]).expect("ingest response parses") {
        Response::Ingested { epochs, total, .. } => {
            assert_eq!((epochs as usize, total as usize), (mid, trace.epochs.len()));
        }
        other => panic!("expected ingested, got {other:?}"),
    }
}

/// A k=4 workload for the randomized boundary/retention/shard sweep.
fn proptest_workload() -> (net_model::Snapshot, Vec<dna_io::TraceEpoch>) {
    use topo_gen::{fat_tree, Routing, ScenarioGen, ScenarioKind};
    let ft = fat_tree(4, Routing::Ebgp);
    let mut gen = ScenarioGen::new(77);
    let labeled = gen.labeled_sequence(
        &ft.snapshot,
        &[
            ScenarioKind::LinkFailure,
            ScenarioKind::LinkRecovery,
            ScenarioKind::AclInsert,
            ScenarioKind::AclRemove,
        ],
        6,
    );
    let epochs = labeled
        .into_iter()
        .map(|(kind, changes)| dna_io::TraceEpoch {
            label: Some(kind.to_string()),
            changes,
        })
        .collect();
    (ft.snapshot, epochs)
}

proptest! {
    // Each case pays several engine bring-ups; keep the count modest —
    // the sweep's value is hitting edge boundaries (0, len) and tight
    // retention, not volume.
    #![proptest_config(ProptestConfig::with_cases_and_seed(8, 0xD9A_2001))]

    /// checkpoint → resume → remaining epochs ≡ straight-through
    /// replay, for any checkpoint boundary, any retention config, and
    /// shards 1/2/4 — pinned on the serialized bytes of every
    /// deterministic query response.
    #[test]
    fn resume_equals_straight_through(
        boundary in 0usize..=6,
        retain in 1usize..=8,
        retain_bytes in prop::option::of(512usize..4096),
        shards in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let (snapshot, epochs) = proptest_workload();
        let config = SessionConfig {
            retain,
            retain_bytes,
            ..Default::default()
        };
        let mut straight = Session::open("p", snapshot.clone(), config.clone()).expect("opens");
        let mut live = Session::open("p", snapshot, config.clone()).expect("opens");
        for ep in &epochs {
            straight.ingest(ep).expect("straight ingest");
        }
        for ep in &epochs[..boundary] {
            live.ingest(ep).expect("pre-crash ingest");
        }
        let server = SessionConfig { shards, ..config };
        let mut resumed = kill_and_resume(live, &server);
        prop_assert_eq!(resumed.epochs(), boundary);
        for ep in &epochs[boundary..] {
            resumed.ingest(ep).expect("post-resume ingest");
        }
        for q in [
            QueryKind::ReachPair { src: "edge0_0".into(), dst: "edge1_1".into() },
            QueryKind::ReachPair { src: "agg0_0".into(), dst: "edge1_0".into() },
            QueryKind::Blast { last: 4 },
            QueryKind::Blast { last: 64 },
            QueryKind::Report { from: 0, to: 6 },
            QueryKind::Report { from: boundary, to: boundary + 1 },
        ] {
            prop_assert_eq!(
                write_response(&resumed.answer(&q)),
                write_response(&straight.answer(&q)),
                "answer diverged for {:?} (boundary {}, retain {}, shards {})",
                q, boundary, retain, shards
            );
        }
        let (a, b) = (resumed.stats(), straight.stats());
        prop_assert_eq!(
            (a.epochs, a.retained, a.retained_from, a.flows, a.mismatches),
            (b.epochs, b.retained, b.retained_from, b.flows, b.mismatches)
        );
    }
}
