//! Failed-session error parity across transports: once a session's
//! engine thread has panicked and been fenced, *every* front door must
//! answer queries for it with the same `error` response — the failure
//! reason verbatim, byte-identical whether the query arrives over the
//! engine request channel (the path stdin pipes and unix-socket broker
//! clients share) or over TCP.
//!
//! The TCP path is the one that can drift: it normally answers
//! read-only queries from the session's published view without
//! touching the engine. The fence withdraws the view, so the query
//! MUST fall through to the engine side and surface the real reason —
//! never a stale answer, never a generic "unknown session".
//!
//! Lives in its own file because `DNA_SERVE_FAULT_LABEL` is
//! process-global: the injected fault must not leak into other tests'
//! router sessions.

use dna_io::{write_query, write_trace, Query, QueryKind, Trace, TraceEpoch};
use dna_serve::{query_tcp, NotifyHub, Request, Router, SessionConfig, ViewRegistry};
use std::net::TcpListener;
use std::sync::{mpsc, Arc};
use topo_gen::{fat_tree, Routing, ScenarioGen, ScenarioKind};

#[test]
fn failed_session_answers_identically_over_tcp_and_the_engine_channel() {
    std::env::set_var("DNA_SERVE_FAULT_LABEL", "inject-parity-fault");

    let ft = fat_tree(4, Routing::Ebgp);
    let mut gen = ScenarioGen::new(17);
    let changes = gen.labeled_sequence(&ft.snapshot, &[ScenarioKind::LinkFailure], 1);
    let trace = Trace {
        epochs: vec![TraceEpoch {
            label: Some("inject-parity-fault".into()),
            changes: changes.into_iter().next().expect("one epoch").1,
        }],
    };

    // The full `--listen` bring-up: router with views and a notify hub
    // behind a real TCP accept loop.
    let views = Arc::new(ViewRegistry::new());
    let hub = Arc::new(NotifyHub::new());
    let mut router = Router::new(SessionConfig::default())
        .with_views(Arc::clone(&views))
        .with_notify_hub(Arc::clone(&hub));
    router
        .preload(vec![("fp".into(), ft.snapshot)])
        .expect("session opens");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || router.run(rx));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let accept_tx = tx.clone();
    std::thread::spawn(move || dna_serve::tcp_accept_loop(accept_tx, listener, views, hub));

    // Trip the fence: the labeled epoch panics the engine thread inside
    // its fence, and the ingest reply already carries the reason.
    let ack = query_tcp(&addr, &write_trace(&trace)).expect("trace over tcp");
    assert!(
        ack.contains("failed") && ack.contains("inject-parity-fault"),
        "fault must fence the session:\n{ack}"
    );

    let query = write_query(&Query {
        session: Some("fp".into()),
        kind: QueryKind::ReachPair {
            src: "edge0_0".into(),
            dst: "edge1_1".into(),
        },
    });
    // The engine request channel — what the stdin pipe and unix-socket
    // pumps deliver (both are thin framers over this channel).
    let (reply_tx, reply_rx) = mpsc::channel();
    tx.send(Request {
        text: query.clone(),
        session: None,
        reply: reply_tx,
    })
    .expect("engine side alive");
    let channel_reply = reply_rx.recv().expect("engine answers");
    // The TCP front door: its view was withdrawn by the fence, so the
    // query must fall through to the engine and return the same bytes.
    let tcp_reply = query_tcp(&addr, &query).expect("query over tcp");

    // Inside the response artifact the message is a quoted string, so
    // the session name's quotes arrive backslash-escaped.
    assert!(
        channel_reply.contains(r#"session \"fp\" failed:"#)
            && channel_reply.contains("inject-parity-fault"),
        "engine reply must carry the reason verbatim:\n{channel_reply}"
    );
    assert_eq!(
        tcp_reply, channel_reply,
        "failed-session errors must be byte-identical on TCP"
    );
}
