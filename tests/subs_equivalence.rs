//! Standing queries, the equivalence backbone: a subscriber that
//! receives **pushed** notify artifacts must see byte-for-byte what a
//! client **polling** `notifications <id>` after every commit sees.
//!
//! Pinned two ways:
//!
//! * a randomized sweep (scenario seed × shards 1/2/4 × sequential vs
//!   coalesced commits): two identically-named sessions subscribe the
//!   same five standing queries (one per kind) and ingest the same
//!   epochs; one delivers through a [`NotifyHub`] watcher, the other by
//!   draining the poll queue after every commit. Per subscription, the
//!   pushed artifact stream and the non-empty poll artifacts must be
//!   identical strings — and a coalesced commit must emit at most ONE
//!   merged notify per subscription;
//! * a deterministic suppression check: epochs that cannot change a
//!   subscription's answer queue nothing and count `notify_suppressed`
//!   — zero work, zero bytes is load-bearing, not best-effort.
//!
//! (The bounded-queue drop/resync behavior on both delivery paths is
//! unit-tested next to the implementation in `dna-serve`'s `subs`
//! module.)

use dna_io::{parse_notify, QueryKind, SubscriptionSpec, TraceEpoch};
use dna_serve::{NotifyHub, Session, SessionConfig};
use net_model::Flow;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use topo_gen::{fat_tree, Routing, ScenarioGen, ScenarioKind};

/// A k=4 fat-tree workload of `epochs` labeled change epochs.
fn workload(seed: u64, epochs: usize) -> (net_model::Snapshot, Vec<TraceEpoch>) {
    let ft = fat_tree(4, Routing::Ebgp);
    let mut gen = ScenarioGen::new(seed);
    let labeled = gen.labeled_sequence(
        &ft.snapshot,
        &[
            ScenarioKind::LinkFailure,
            ScenarioKind::LinkRecovery,
            ScenarioKind::AclInsert,
            ScenarioKind::AclRemove,
        ],
        epochs,
    );
    let epochs = labeled
        .into_iter()
        .map(|(kind, changes)| TraceEpoch {
            label: Some(kind.to_string()),
            changes,
        })
        .collect();
    (ft.snapshot, epochs)
}

/// One subscription of every kind, against endpoints the scenario
/// generator actually perturbs.
fn specs(snapshot: &net_model::Snapshot) -> Vec<SubscriptionSpec> {
    let addr = snapshot.devices["edge1_1"]
        .interfaces
        .values()
        .next()
        .expect("edge1_1 has interfaces")
        .addr;
    let flow = Flow::tcp_to(addr, 80);
    vec![
        SubscriptionSpec::ReachPair {
            src: "edge0_0".into(),
            dst: "edge1_1".into(),
        },
        SubscriptionSpec::Reach {
            src: "edge0_0".into(),
            flow,
        },
        SubscriptionSpec::Blast {
            device: "edge0_0".into(),
        },
        SubscriptionSpec::NeverReach {
            src: "edge0_0".into(),
            dst: "edge1_0".into(),
        },
        SubscriptionSpec::NoBlackhole {
            src: "edge0_0".into(),
            flow,
        },
    ]
}

/// Subscribes every spec, returning the acked ids (insertion order).
fn subscribe_all(session: &Session, specs: &[SubscriptionSpec]) -> Vec<u64> {
    specs
        .iter()
        .map(|spec| {
            let ack = session
                .subscription_reply(&QueryKind::Subscribe(spec.clone()))
                .expect("subscribe is a subscription command");
            parse_notify(&ack)
                .expect("subscribe acks with a notify")
                .subscription
        })
        .collect()
}

/// Drives `epochs` into the session: one commit per epoch when
/// `chunk <= 1`, else one *coalesced* commit per `chunk`-sized slice
/// (the backlog drain path behind `--coalesce`). Returns the commit
/// count. Calls `after_commit` after every commit.
fn drive(
    session: &mut Session,
    epochs: &[TraceEpoch],
    chunk: usize,
    mut after_commit: impl FnMut(&Session),
) -> usize {
    let mut commits = 0;
    if chunk <= 1 {
        for ep in epochs {
            session.ingest(ep).expect("epoch applies");
            commits += 1;
            after_commit(session);
        }
    } else {
        for slice in epochs.chunks(chunk) {
            let refs: Vec<&TraceEpoch> = slice.iter().collect();
            session.ingest_coalesced(&refs, 0).expect("chunk applies");
            commits += 1;
            after_commit(session);
        }
    }
    commits
}

proptest! {
    // Each case pays two engine bring-ups; modest case count, wide
    // parameter spread.
    #![proptest_config(ProptestConfig::with_cases_and_seed(6, 0x5AB5_C01B))]

    /// Push ≡ poll, byte for byte, per subscription — across scenario
    /// seeds, shard counts and commit granularity.
    #[test]
    fn pushed_deltas_match_poll_after_every_commit(
        seed in 0u64..1_000,
        shards in prop_oneof![Just(1usize), Just(2), Just(4)],
        chunk in 1usize..=3,
    ) {
        let (snapshot, epochs) = workload(seed, 10);
        let config = SessionConfig { shards, ..SessionConfig::default() };
        let specs = specs(&snapshot);

        // The push client: a hub watcher subscribed to every id.
        let mut pushed = Session::open("subeq", snapshot.clone(), config.clone())
            .expect("push session opens");
        let hub = Arc::new(NotifyHub::new());
        pushed.set_notify_hub(Arc::clone(&hub));
        let ids = subscribe_all(&pushed, &specs);
        let watcher = hub.register();
        for id in &ids {
            hub.watch(watcher, "subeq", *id);
        }

        // The poll client: same name (notify artifacts embed it), same
        // subscriptions, drained after every commit.
        let mut polled = Session::open("subeq", snapshot, config)
            .expect("poll session opens");
        prop_assert_eq!(&subscribe_all(&polled, &specs), &ids, "ids must line up");
        let mut poll_stream: BTreeMap<u64, Vec<String>> =
            ids.iter().map(|id| (*id, Vec::new())).collect();

        let commits = drive(&mut pushed, &epochs, chunk, |_| {});
        drive(&mut polled, &epochs, chunk, |s| {
            for id in &ids {
                let batch = s
                    .subscription_reply(&QueryKind::Notifications { id: *id })
                    .expect("notifications is a subscription command");
                let n = parse_notify(&batch).expect("poll answers with a notify");
                assert!(n.events.len() <= 1, "one commit queues at most one event");
                if !n.events.is_empty() {
                    poll_stream.get_mut(id).expect("known id").push(batch);
                }
            }
        });

        // Drain the watcher: close it first so the final wait returns
        // `None` instead of blocking once the queues are empty.
        hub.unregister(watcher);
        let mut push_stream: BTreeMap<u64, Vec<String>> =
            ids.iter().map(|id| (*id, Vec::new())).collect();
        while let Some(batch) = hub.wait(watcher) {
            for artifact in batch {
                let n = parse_notify(&artifact).expect("pushed artifacts are notifies");
                push_stream
                    .get_mut(&n.subscription)
                    .expect("pushes only on subscribed ids")
                    .push(artifact);
            }
        }

        for id in &ids {
            prop_assert_eq!(
                &push_stream[id],
                &poll_stream[id],
                "push and poll must carry identical bytes for subscription {}",
                id
            );
            // A coalesced commit is ONE evaluation: never more notifies
            // than commits, however many epochs were merged.
            prop_assert!(push_stream[id].len() <= commits);
        }
    }
}

/// Non-intersecting commits are suppressed: a subscription whose answer
/// cannot change queues zero events (a poll drains empty) and each
/// suppression is counted — the "zero work and zero bytes" half of the
/// tentpole contract.
#[test]
fn non_intersecting_epochs_queue_nothing_and_count_suppression() {
    let (snapshot, epochs) = workload(7, 6);
    let mut session =
        Session::open("subeq_suppress", snapshot, SessionConfig::default()).expect("session opens");
    // A same-pod edge pair: most of the workload's perturbations land
    // elsewhere in the fabric, so plenty of commits can't change it.
    let ack = session
        .subscription_reply(&QueryKind::Subscribe(SubscriptionSpec::ReachPair {
            src: "edge0_0".into(),
            dst: "edge0_1".into(),
        }))
        .expect("subscribe is a subscription command");
    let id = parse_notify(&ack).expect("ack parses").subscription;
    let suppressed = dna_obs::global().counter_for("notify_suppressed", "subeq_suppress");
    let before = suppressed.get();
    let mut quiet = 0u64;
    for ep in &epochs {
        session.ingest(ep).expect("epoch applies");
        let batch = session
            .subscription_reply(&QueryKind::Notifications { id })
            .expect("notifications is a subscription command");
        let n = parse_notify(&batch).expect("poll answers with a notify");
        if n.events.is_empty() {
            quiet += 1;
        }
    }
    assert!(quiet > 0, "workload must contain non-intersecting epochs");
    assert!(
        suppressed.get() - before >= quiet,
        "every quiet commit must count a suppression ({} quiet, {} counted)",
        quiet,
        suppressed.get() - before
    );
}
