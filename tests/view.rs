//! Published-view equivalence: the immutable [`dna_serve::QueryView`]
//! a session publishes after every applied epoch must answer exactly
//! like the live session at that epoch — byte for byte, including the
//! error stories — across shard counts. Plus a publish/read race: many
//! readers over one slot only ever observe epochs moving forward.

use dna_io::QueryKind;
use dna_serve::{Session, SessionConfig, ViewReader, ViewSlot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use topo_gen::{fat_tree, Routing, ScenarioGen, ALL_SCENARIOS};

const EPOCHS: usize = 8;

fn workload(seed: u64) -> (net_model::Snapshot, Vec<dna_io::TraceEpoch>) {
    let ft = fat_tree(4, Routing::Ebgp);
    let mut gen = ScenarioGen::new(seed);
    let labeled = gen.labeled_sequence(&ft.snapshot, ALL_SCENARIOS, EPOCHS);
    let epochs = labeled
        .into_iter()
        .map(|(kind, changes)| dna_io::TraceEpoch {
            label: Some(kind.to_string()),
            changes,
        })
        .collect();
    (ft.snapshot, epochs)
}

/// The read-only query battery: happy paths, a bounded and an
/// unbounded history window, and every error clause the view must
/// reproduce verbatim (unknown source, unknown destination).
fn battery(epoch: usize) -> Vec<QueryKind> {
    vec![
        QueryKind::ReachPair {
            src: "edge0_0".into(),
            dst: "edge1_1".into(),
        },
        QueryKind::ReachPair {
            src: "edge1_0".into(),
            dst: "edge0_1".into(),
        },
        QueryKind::ReachPair {
            src: "ghost".into(),
            dst: "edge1_1".into(),
        },
        QueryKind::ReachPair {
            src: "edge0_0".into(),
            dst: "ghost".into(),
        },
        QueryKind::Blast { last: 4 },
        QueryKind::Blast { last: EPOCHS * 2 },
        QueryKind::Report {
            from: epoch.saturating_sub(2),
            to: epoch + 1,
        },
        QueryKind::Stats,
    ]
}

/// Mid-stream equivalence, per epoch, per shard count: after every
/// ingested epoch the freshly published view answers the whole battery
/// byte-identically to the live session — which *is* the sequential
/// replay to that epoch. Shard count only changes bring-up internals,
/// never an answer.
#[test]
fn published_view_matches_live_session_at_every_epoch() {
    let (snapshot, epochs) = workload(515);
    for shards in [1usize, 2, 4] {
        let config = SessionConfig {
            shards,
            ..SessionConfig::default()
        };
        let slot = Arc::new(ViewSlot::new());
        let mut session = Session::open("v", snapshot.clone(), config).expect("session opens");
        session.set_view_slot(Arc::clone(&slot));
        let mut reader = ViewReader::new();
        // set_view_slot publishes the epoch-0 state immediately.
        let v0 = reader.current(&slot).expect("initial view published");
        assert_eq!(v0.epochs(), 0);
        for (i, epoch) in epochs.iter().enumerate() {
            session.ingest(epoch).expect("epoch applies");
            let view = reader.current(&slot).expect("view published");
            assert_eq!(view.epochs() as usize, i + 1, "shards={shards}");
            for kind in battery(i + 1) {
                let from_view = dna_io::write_response(
                    &view
                        .answer(&kind)
                        .expect("battery kinds are view-answerable"),
                );
                let from_session = dna_io::write_response(&session.answer(&kind));
                assert_eq!(
                    from_view,
                    from_session,
                    "view diverged from session at epoch {} (shards={shards}, {kind:?})",
                    i + 1
                );
            }
        }
        // `sessions` and `checkpoint` must keep routing to the engine.
        let view = reader.current(&slot).expect("view published");
        assert!(view.answer(&QueryKind::Sessions).is_none());
        assert!(view.answer(&QueryKind::Checkpoint).is_none());
    }
}

/// The publish path under reader pressure: one session ingests (and so
/// publishes) while eight readers spin on the same slot. Every reader
/// must observe a monotonically non-decreasing epoch count and settle
/// on the final state — no torn views, no going back in time, no
/// reader ever wedging the publisher.
#[test]
fn racing_readers_only_ever_see_epochs_move_forward() {
    let (snapshot, epochs) = workload(516);
    let slot = Arc::new(ViewSlot::new());
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..8)
        .map(|_| {
            let slot = Arc::clone(&slot);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut reader = ViewReader::new();
                let mut last = 0u64;
                let mut observed = 0u64;
                while !done.load(Ordering::Acquire) {
                    if let Some(view) = reader.current(&slot) {
                        let e = view.epochs();
                        assert!(e >= last, "view went back in time: {e} < {last}");
                        last = e;
                        observed += 1;
                    }
                    std::thread::yield_now();
                }
                // The done flag is raised after the last publish, so one
                // final look is guaranteed to see the all-epochs view.
                let view = reader.current(&slot).expect("final view published");
                assert!(view.epochs() >= last, "final view went back in time");
                last = view.epochs();
                observed += 1;
                (last, observed)
            })
        })
        .collect();
    let mut session =
        Session::open("race", snapshot, SessionConfig::default()).expect("session opens");
    session.set_view_slot(Arc::clone(&slot));
    for epoch in &epochs {
        session.ingest(epoch).expect("epoch applies");
    }
    done.store(true, Ordering::Release);
    for reader in readers {
        let (last, observed) = reader.join().expect("reader thread");
        assert!(observed > 0, "reader never saw a published view");
        assert_eq!(
            last, EPOCHS as u64,
            "reader settled short of the final state"
        );
    }
    // After the race settles, a fresh reader sees exactly the final state.
    let mut fresh = ViewReader::new();
    assert_eq!(
        fresh.current(&slot).expect("final view").epochs(),
        EPOCHS as u64
    );
}
