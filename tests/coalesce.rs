//! Backlog epoch coalescing (`--coalesce`): merging N pending epochs
//! into one dataflow commit must be invisible in the final engine view.
//! Pinned three ways:
//!
//! * a randomized sweep (chunk size × shard count × scenario seed)
//!   asserting the coalesced session's final view is byte-identical to
//!   sequential ingest, with the from-scratch shadow cross-checking
//!   every merged commit;
//! * a deterministic check of what coalescing *does* change — the one
//!   retained history record with the merged `coalesced(N): ...` label
//!   (FORMAT.md) and the `epochs_coalesced` / commit counters;
//! * a backlog smoke: a flooded router session with `coalesce` set
//!   drains its queue through the merge path, and every post-drain
//!   state query answer equals sequential replay byte-for-byte.

use dna_io::{
    parse_response, write_query, write_response, write_snapshot, write_trace, Query, QueryKind,
    Response, Trace, TraceEpoch,
};
use dna_serve::{pump_stream, read_artifact, Request, Router, Session, SessionConfig};
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::mpsc;
use topo_gen::{fat_tree, Routing, ScenarioGen, ScenarioKind};

/// A k=4 fat-tree workload of `epochs` labeled change epochs.
fn workload(seed: u64, epochs: usize) -> (net_model::Snapshot, Vec<TraceEpoch>) {
    let ft = fat_tree(4, Routing::Ebgp);
    let mut gen = ScenarioGen::new(seed);
    let labeled = gen.labeled_sequence(
        &ft.snapshot,
        &[
            ScenarioKind::LinkFailure,
            ScenarioKind::LinkRecovery,
            ScenarioKind::AclInsert,
            ScenarioKind::AclRemove,
        ],
        epochs,
    );
    assert_eq!(labeled.len(), epochs);
    let epochs = labeled
        .into_iter()
        .map(|(kind, changes)| TraceEpoch {
            label: Some(kind.to_string()),
            changes,
        })
        .collect();
    (ft.snapshot, epochs)
}

/// State-derived queries whose answers may not depend on commit
/// granularity. (History queries — blast, report — legitimately differ:
/// a merged commit keeps one record, which is the documented trade.)
fn state_queries() -> Vec<QueryKind> {
    vec![
        QueryKind::ReachPair {
            src: "edge0_0".into(),
            dst: "edge1_1".into(),
        },
        QueryKind::ReachPair {
            src: "agg0_0".into(),
            dst: "edge1_0".into(),
        },
        QueryKind::ReachPair {
            src: "edge1_1".into(),
            dst: "edge0_0".into(),
        },
    ]
}

proptest! {
    // Each case pays four engine bring-ups (two sessions × verify
    // shadow); modest case count, wide parameter spread.
    #![proptest_config(ProptestConfig::with_cases_and_seed(8, 0xC0A7_E5CE))]

    /// Coalesced commits of N random epochs ≡ N sequential epochs —
    /// final engine view byte-identical, for any chunking and shards
    /// 1/2/4, with the from-scratch shadow auditing every merged
    /// commit.
    #[test]
    fn coalesced_commit_equals_sequential(
        seed in 0u64..1000,
        chunk in 2usize..=6,
        shards in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let (snapshot, epochs) = workload(seed, 8);
        let config = SessionConfig { verify: true, shards, ..Default::default() };
        let mut sequential =
            Session::open("c", snapshot.clone(), config.clone()).expect("session opens");
        for ep in &epochs {
            sequential.ingest(ep).expect("sequential ingest");
        }
        let mut coalesced = Session::open("c", snapshot, config).expect("session opens");
        for group in epochs.chunks(chunk) {
            let refs: Vec<&TraceEpoch> = group.iter().collect();
            coalesced.ingest_coalesced(&refs, 0).expect("coalesced ingest");
        }
        prop_assert_eq!(
            coalesced.mismatches(), 0,
            "from-scratch shadow disagreed with a merged commit"
        );
        prop_assert_eq!(coalesced.epochs(), sequential.epochs(), "stream epoch accounting");
        prop_assert_eq!(
            write_snapshot(coalesced.snapshot()),
            write_snapshot(sequential.snapshot()),
            "final engine view diverged (seed {}, chunk {}, shards {})",
            seed, chunk, shards
        );
        for q in state_queries() {
            prop_assert_eq!(
                write_response(&coalesced.answer(&q)),
                write_response(&sequential.answer(&q)),
                "answer diverged for {:?} (seed {}, chunk {}, shards {})",
                q, seed, chunk, shards
            );
        }
    }
}

/// What coalescing *does* change, deterministically: one retained
/// record carrying the merged label, the epoch counter still following
/// the stream, and the hot-path counters accounting the saved commits.
#[test]
fn merged_commit_history_record_and_counters() {
    let (snapshot, epochs) = workload(11, 5);
    let mut s =
        Session::open("coalesce-obs", snapshot, SessionConfig::default()).expect("session opens");
    let refs: Vec<&TraceEpoch> = epochs[..4].iter().collect();
    s.ingest_coalesced(&refs, 0).expect("merged commit applies");
    s.ingest(&epochs[4]).expect("tail epoch applies");
    assert_eq!(
        s.epochs(),
        5,
        "epoch accounting follows the stream, not commits"
    );

    // The merged label is the FORMAT.md shape: coalesced(N) plus the
    // constituent labels in arrival order, joined with " + ".
    let expected = format!(
        "coalesced(4): {} + {} + {} + {}",
        epochs[0].label.as_deref().unwrap(),
        epochs[1].label.as_deref().unwrap(),
        epochs[2].label.as_deref().unwrap(),
        epochs[3].label.as_deref().unwrap(),
    );
    assert_eq!(dna_serve::session::coalesced_label(&refs), expected);
    let report = write_response(&s.answer(&QueryKind::Report { from: 0, to: 5 }));
    assert!(
        report.contains(&expected),
        "history must carry the merged label:\n{report}"
    );
    // Two retained records: the merged one (anchored at epoch 0) and
    // the sequential tail (epoch 4).
    match s.answer(&QueryKind::Report { from: 0, to: 5 }) {
        Response::Report { epochs: recs } => {
            assert_eq!(recs.len(), 2, "one record per commit");
            assert_eq!(recs[0].0, 0, "merged record anchors at its first epoch");
            assert_eq!(recs[1].0, 4, "tail record keeps its stream index");
        }
        other => panic!("expected report, got {other:?}"),
    }

    let r = dna_obs::global();
    assert_eq!(
        r.counter_for("epochs_coalesced", "coalesce-obs").get(),
        3,
        "a 4-way merge saves three commits"
    );
    assert_eq!(
        r.counter_for("epochs_applied", "coalesce-obs").get(),
        2,
        "two commits total"
    );
    assert!(
        r.counter_for("dd_tuples", "coalesce-obs").get() > 0,
        "commit tuple-volume proxy advances"
    );
}

/// Backlog smoke: flood one router session with single-epoch trace
/// artifacts faster than it can commit them, with `coalesce` enabled.
/// The drain must engage the merge path, every artifact must be
/// acknowledged, and every post-drain state answer must equal
/// sequential replay byte-for-byte.
#[test]
fn backlog_drain_matches_sequential_replay() {
    const N: usize = 24;
    let (snapshot, epochs) = workload(42, N);
    let mut oracle =
        Session::open("f", snapshot.clone(), SessionConfig::default()).expect("session opens");
    for ep in &epochs {
        oracle.ingest(ep).expect("oracle ingest");
    }

    let mut router = Router::new(SessionConfig {
        coalesce: 4,
        ..Default::default()
    });
    router
        .preload(vec![("f".into(), snapshot)])
        .expect("bring-up");
    let (tx, rx) = mpsc::channel();

    // Flood: enqueue every epoch as its own trace artifact *before* the
    // router starts, so the session's ingest queue is deep from the
    // first pickup and the drain path engages.
    let mut replies = Vec::new();
    for ep in &epochs {
        let text = write_trace(&Trace {
            epochs: vec![ep.clone()],
        });
        let (reply_tx, reply_rx) = mpsc::channel();
        tx.send(Request {
            text,
            session: Some("f".into()),
            reply: reply_tx,
        })
        .expect("channel open");
        replies.push(reply_rx);
    }
    let engine = std::thread::spawn(move || router.run(rx));

    // Every artifact is individually acknowledged as applied, whatever
    // commit it rode in; the last acknowledgement totals the stream.
    let acks: Vec<String> = replies
        .into_iter()
        .map(|rx| rx.recv().expect("reply arrives"))
        .collect();
    let mut last_total = 0;
    for ack in &acks {
        match parse_response(ack).expect("ack parses") {
            Response::Ingested {
                session,
                epochs,
                total,
                ..
            } => {
                assert_eq!(session, "f");
                assert_eq!(epochs, 1, "each artifact carries one epoch");
                assert!(total as usize <= N);
                last_total = total;
            }
            other => panic!("expected ingest ack, got {other:?}"),
        }
    }
    assert_eq!(last_total as usize, N, "drain absorbed the whole stream");
    assert!(
        dna_obs::global().counter_for("epochs_coalesced", "f").get() > 0,
        "the flood never engaged the coalescing drain"
    );

    // Post-drain answers: state queries byte-identical to sequential
    // replay; stats agree on stream accounting and shadow verdicts.
    let mut queries = String::new();
    for q in state_queries() {
        queries.push_str(&write_query(&Query {
            session: Some("f".into()),
            kind: q,
        }));
    }
    queries.push_str(&write_query(&Query {
        session: Some("f".into()),
        kind: QueryKind::Stats,
    }));
    let mut out = Vec::new();
    pump_stream(&tx, &mut Cursor::new(queries.into_bytes()), &mut out).expect("pump runs");
    let mut cursor = Cursor::new(out);
    let mut got = Vec::new();
    while let Some(a) = read_artifact(&mut cursor).expect("well-framed") {
        got.push(a);
    }
    for (q, answer) in state_queries().iter().zip(&got) {
        assert_eq!(
            answer,
            &write_response(&oracle.answer(q)),
            "post-drain answer diverged for {q:?}"
        );
    }
    match parse_response(&got[3]).expect("stats parses") {
        Response::Stats(s) => {
            assert_eq!(s.epochs as usize, N, "stats count stream epochs");
            assert_eq!(s.mismatches, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }

    drop(tx);
    let summary = engine.join().expect("router thread");
    assert_eq!(summary.epochs as usize, N);
    assert_eq!(summary.errors, 0);
}
