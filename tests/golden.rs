//! Golden-file test: a checked-in k=4 eBGP fat-tree snapshot and
//! link-failure trace must produce the checked-in behavior-diff report
//! **byte-for-byte**, from *both* analyzers. This pins three things at
//! once: the wire format (serialization is canonical over the fixtures),
//! the analyzers' semantics (any behavioral drift shows up as a report
//! diff), and their equivalence (experiment E8, offline form).
//!
//! Regenerating after an intentional change:
//! ```sh
//! cd tests/golden
//! dna dump --topo fat-tree --k 4 --routing ebgp --seed 7 \
//!     --out fattree_k4.snap.dna --trace link_failure.trace.dna \
//!     --epochs 3 --scenarios link-failure
//! dna diff fattree_k4.snap.dna link_failure.trace.dna --out link_failure.report.dna
//! ```

use dna_core::{ReplayMode, ReplaySession};
use dna_io::{
    parse_report, parse_snapshot, parse_trace, write_report, write_snapshot, write_trace,
};
use dna_io::{EpochDiff, Report};

const SNAPSHOT: &str = include_str!("golden/fattree_k4.snap.dna");
const TRACE: &str = include_str!("golden/link_failure.trace.dna");
const REPORT: &str = include_str!("golden/link_failure.report.dna");

#[test]
fn golden_fixtures_are_canonical() {
    // The serializer must reproduce the checked-in bytes exactly — this
    // pins the wire format itself, independent of the analyzers.
    let snap = parse_snapshot(SNAPSHOT).expect("golden snapshot parses");
    assert_eq!(write_snapshot(&snap), SNAPSHOT, "snapshot format drifted");
    let trace = parse_trace(TRACE).expect("golden trace parses");
    assert_eq!(write_trace(&trace), TRACE, "trace format drifted");
    let report = parse_report(REPORT).expect("golden report parses");
    assert_eq!(write_report(&report), REPORT, "report format drifted");
    assert!(snap.validate().is_empty(), "golden snapshot must be valid");
    assert_eq!(trace.epochs.len(), 3);
    assert_eq!(report.epochs.len(), 3);
}

#[test]
fn golden_report_reproduced_by_both_analyzers() {
    let snap = parse_snapshot(SNAPSHOT).expect("golden snapshot parses");
    let trace = parse_trace(TRACE).expect("golden trace parses");
    let mut session = ReplaySession::new(snap, ReplayMode::Both).expect("analyzers init");
    let mut differential = Report::default();
    let mut scratch = Report::default();
    for ep in &trace.epochs {
        let out = session.step(&ep.changes).expect("epoch applies");
        differential.epochs.push(EpochDiff::from_behavior(
            ep.label.clone(),
            out.differential.as_ref().unwrap(),
        ));
        scratch.epochs.push(EpochDiff::from_behavior(
            ep.label.clone(),
            out.scratch.as_ref().unwrap(),
        ));
    }
    assert_eq!(
        write_report(&differential),
        REPORT,
        "differential analyzer drifted from the golden report"
    );
    assert_eq!(
        write_report(&scratch),
        REPORT,
        "from-scratch analyzer drifted from the golden report"
    );
}
