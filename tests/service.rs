//! End-to-end service test: a `dna-serve` session sustains incremental
//! ingest of a 64-epoch trace while answering interleaved reachability,
//! blast-radius and report queries — with byte-stable responses across
//! runs, and query answers that exactly match a from-scratch analysis
//! of the final state (proving the query path tracked every epoch
//! without ever re-simulating).
//!
//! This is the in-process twin of the CI service smoke (which drives
//! the same protocol through the `dna serve` binary on a corpus
//! snapshot); it uses k=4 so the debug-profile test run stays fast —
//! the k=6 form is the `harness serve` experiment (E9).

use dna_core::DiffEngine;
use dna_io::{parse_response, write_query, write_trace, Query, QueryKind, Response, Trace};
use dna_serve::{read_artifact, serve_stream, SessionManager};
use std::io::Cursor;
use topo_gen::{fat_tree, Routing, ScenarioGen, ALL_SCENARIOS};

const EPOCHS: usize = 64;

fn workload() -> (net_model::Snapshot, Trace) {
    let ft = fat_tree(4, Routing::Ebgp);
    let mut gen = ScenarioGen::new(4242);
    let labeled = gen.labeled_sequence(&ft.snapshot, ALL_SCENARIOS, EPOCHS);
    assert_eq!(labeled.len(), EPOCHS, "workload must have {EPOCHS} epochs");
    let trace = Trace::from_labeled(labeled.into_iter().map(|(k, cs)| (k.to_string(), cs)));
    (ft.snapshot, trace)
}

/// The interleaved input stream: after every 8-epoch trace slice, a
/// reachability and a blast query probe the evolving state; report and
/// stats queries close the session.
fn input_stream(trace: &Trace) -> String {
    let mut input = String::new();
    let q = |kind: QueryKind| {
        write_query(&Query {
            session: None,
            kind,
        })
    };
    for slice in trace.epochs.chunks(8) {
        input.push_str(&write_trace(&Trace {
            epochs: slice.to_vec(),
        }));
        input.push_str(&q(QueryKind::ReachPair {
            src: "edge0_0".into(),
            dst: "edge1_1".into(),
        }));
        input.push_str(&q(QueryKind::Blast { last: 8 }));
    }
    input.push_str(&q(QueryKind::Report {
        from: EPOCHS - 4,
        to: EPOCHS,
    }));
    input.push_str(&q(QueryKind::Stats));
    input
}

fn serve_once(snapshot: &net_model::Snapshot, input: &str) -> (dna_serve::ServeSummary, String) {
    let mut mgr = SessionManager::new(Default::default());
    mgr.open("svc", snapshot.clone()).expect("session opens");
    let mut out = Vec::new();
    let summary = serve_stream(
        &mut mgr,
        None,
        &mut Cursor::new(input.as_bytes().to_vec()),
        &mut out,
    )
    .expect("serve loop runs");
    // The session must have absorbed everything and stayed live.
    let s = mgr.session("svc").expect("session lives");
    assert_eq!(s.epochs(), EPOCHS);
    // Query answers must equal a from-scratch analysis of the FINAL
    // state: the incremental path tracked all 64 epochs exactly.
    let fresh = DiffEngine::new(s.snapshot().clone()).expect("fresh engine on final state");
    for (src, dst) in [("edge0_0", "edge1_1"), ("edge1_0", "edge0_1")] {
        match s.answer(&QueryKind::ReachPair {
            src: src.into(),
            dst: dst.into(),
        }) {
            Response::Reach { outcomes } => {
                let dc = &s.snapshot().devices[dst];
                let flow = net_model::Flow::tcp_to(dc.interfaces.values().next().unwrap().addr, 80);
                assert_eq!(
                    outcomes,
                    fresh.query(src, &flow),
                    "incremental answer for {src}->{dst} diverged from scratch"
                );
            }
            other => panic!("expected reach, got {other:?}"),
        }
    }
    (
        summary,
        String::from_utf8(out).expect("responses are utf-8"),
    )
}

/// Strips the one nondeterministic response line (cumulative wall-clock
/// stage timings in `ok stats`).
fn without_timings(out: &str) -> String {
    out.lines()
        .filter(|l| !l.trim_start().starts_with("time "))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The in-process form of the CI service smoke: serve the corpus
/// ft4_failures snapshot, pipe its trace plus three queries through,
/// and require the checked-in response bytes exactly. (CI repeats this
/// through the `dna serve` binary; both pin the same golden file.)
#[test]
fn corpus_service_smoke_responses_are_pinned() {
    let snapshot = dna_io::parse_snapshot(include_str!("corpus/ft4_failures.snap.dna"))
        .expect("corpus snapshot parses");
    let q = |kind: QueryKind| {
        write_query(&Query {
            session: None,
            kind,
        })
    };
    let input = format!(
        "{}{}{}{}",
        include_str!("corpus/ft4_failures.trace.dna"),
        q(QueryKind::ReachPair {
            src: "edge0_0".into(),
            dst: "edge1_1".into(),
        }),
        q(QueryKind::Blast { last: 8 }),
        q(QueryKind::Report { from: 0, to: 1 }),
    );
    let mut mgr = SessionManager::new(Default::default());
    mgr.open("ft4_failures", snapshot).expect("session opens");
    let mut out = Vec::new();
    let summary = serve_stream(
        &mut mgr,
        None,
        &mut Cursor::new(input.into_bytes()),
        &mut out,
    )
    .expect("serve loop runs");
    assert_eq!(summary.errors, 0);
    assert_eq!(
        String::from_utf8(out).expect("utf-8"),
        include_str!("corpus/service_smoke.expected.dna"),
        "service responses drifted from the pinned corpus smoke"
    );
}

#[test]
fn service_sustains_ingest_with_interleaved_queries() {
    let (snapshot, trace) = workload();
    let input = input_stream(&trace);
    let (summary, out) = serve_once(&snapshot, &input);
    // 8 trace slices + 16 interleaved + 2 closing queries.
    assert_eq!(summary.artifacts, 8 + 16 + 2);
    assert_eq!(summary.epochs as usize, EPOCHS);
    assert_eq!(summary.queries, 18);
    assert_eq!(summary.errors, 0);
    // One response artifact per inbound artifact, all well-formed.
    let mut responses = Vec::new();
    let mut cursor = Cursor::new(out.clone().into_bytes());
    while let Some(text) = read_artifact(&mut cursor).unwrap() {
        responses.push(parse_response(&text).expect("response parses"));
    }
    assert_eq!(responses.len(), 26);
    // The report query returns exactly the requested retained range.
    let Some(Response::Report { epochs }) = responses.get(24) else {
        panic!("expected the report response at position 24");
    };
    assert_eq!(
        epochs.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
        vec![EPOCHS - 4, EPOCHS - 3, EPOCHS - 2, EPOCHS - 1]
    );
    // Stats counters are exact.
    let Some(Response::Stats(stats)) = responses.get(25) else {
        panic!("expected the stats response at position 25");
    };
    assert_eq!(stats.epochs as usize, EPOCHS);
    assert_eq!(stats.session, "svc");
    assert_eq!(stats.mismatches, 0);
    assert!(stats.classes > 0 && stats.tuples > 0);
    // Byte-stability: a second run over a fresh manager produces the
    // identical byte stream, wall-clock stage timings aside.
    let (_, out2) = serve_once(&snapshot, &input);
    assert_eq!(
        without_timings(&out),
        without_timings(&out2),
        "service responses must be byte-stable across runs"
    );
}
