//! The TCP front door, end to end: a router with published views
//! behind a real `TcpListener`, exercised by real `TcpStream` clients.
//!
//! Two pins:
//!
//! * the corpus service smoke driven over a socket produces the exact
//!   bytes the pipe transport pins (`corpus/service_smoke.expected.dna`)
//!   — with the read-only queries answered from published views, never
//!   touching the engine thread (asserted via the registry's served
//!   counter);
//! * eight concurrent TCP clients hammering reach/blast queries while
//!   a ninth ingests a live trace over the same listener only ever see
//!   answers equal to a sequential replay after *some* epoch prefix —
//!   the snapshot read path never exposes torn state;
//! * a subscribed connection's pushed notify stream (the `dna watch`
//!   wire pattern) carries exactly the events a poll-after-every-epoch
//!   client drains — changed commits push one artifact, unchanged
//!   commits push zero bytes.

use dna_io::{write_query, write_trace, Query, QueryKind, Response, Trace, TraceEpoch};
use dna_serve::{
    query_tcp, read_artifact, tcp_accept_loop, Router, Session, SessionConfig, ViewRegistry,
};
use std::collections::BTreeSet;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Arc};
use topo_gen::{fat_tree, Routing, ScenarioGen, ScenarioKind};

const EPOCHS: usize = 8;
const CHUNK: usize = 2;
const CLIENTS: usize = 8;
const ROUNDS: usize = 6;

/// Brings up a router (with the view registry attached) over the given
/// preloaded sessions and puts a TCP accept loop in front of it.
/// Returns the listener address and the shared registry. The router
/// and accept threads outlive the test body; the process reaps them.
fn serve_tcp(
    sessions: Vec<(String, net_model::Snapshot)>,
) -> (
    SocketAddr,
    Arc<ViewRegistry>,
    mpsc::Sender<dna_serve::Request>,
) {
    let views = Arc::new(ViewRegistry::new());
    let hub = Arc::new(dna_serve::NotifyHub::new());
    let mut router = Router::new(SessionConfig::default())
        .with_views(Arc::clone(&views))
        .with_notify_hub(Arc::clone(&hub));
    router.preload(sessions).expect("sessions open");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || router.run(rx));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let accept_tx = tx.clone();
    let accept_views = Arc::clone(&views);
    std::thread::spawn(move || tcp_accept_loop(accept_tx, listener, accept_views, hub));
    (addr, views, tx)
}

fn q(session: Option<&str>, kind: QueryKind) -> String {
    write_query(&Query {
        session: session.map(str::to_string),
        kind,
    })
}

/// The CI smoke's in-process twin over a real socket: the same corpus
/// artifact stream, byte-for-byte the same pinned responses — proving
/// the TCP transport (and the view read path answering its queries)
/// is indistinguishable on the wire from the single-threaded pipe
/// server that produced the golden file.
#[test]
fn tcp_responses_match_the_pinned_corpus_smoke() {
    let snapshot = dna_io::parse_snapshot(include_str!("corpus/ft4_failures.snap.dna"))
        .expect("corpus snapshot parses");
    let (addr, views, _tx) = serve_tcp(vec![("ft4_failures".into(), snapshot)]);
    let input = format!(
        "{}{}{}{}",
        include_str!("corpus/ft4_failures.trace.dna"),
        q(
            None,
            QueryKind::ReachPair {
                src: "edge0_0".into(),
                dst: "edge1_1".into(),
            }
        ),
        q(None, QueryKind::Blast { last: 8 }),
        q(None, QueryKind::Report { from: 0, to: 1 }),
    );
    let stream = TcpStream::connect(addr).expect("connect");
    (&stream)
        .write_all(input.as_bytes())
        .expect("send artifacts");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("close write half");
    let mut out = String::new();
    let mut reader = BufReader::new(&stream);
    while let Some(a) = read_artifact(&mut reader).expect("well-framed response") {
        out.push_str(&a);
    }
    assert_eq!(
        out,
        include_str!("corpus/service_smoke.expected.dna"),
        "TCP responses drifted from the pinned corpus smoke"
    );
    // All three queries were answered from published views — the trace
    // is the only artifact that reached the engine side.
    assert_eq!(views.served(), 3, "read path must serve the queries");
}

/// A subscribed TCP connection (the `dna watch` wire pattern): the
/// pushed notify stream must carry exactly the event bytes a client
/// polling `notifications <id>` after every commit collects — and
/// nothing at all for commits that didn't change the answer.
#[test]
fn watch_connection_streams_push_equal_to_poll() {
    let (snapshot, epochs) = workload();
    let (addr, _views, _tx) = serve_tcp(vec![("watch".into(), snapshot)]);
    let subscribe = q(
        Some("watch"),
        QueryKind::Subscribe(dna_io::SubscriptionSpec::Blast {
            device: "edge0_0".into(),
        }),
    );

    // The watcher: one persistent connection, subscribed first so the
    // push stream covers every commit from epoch zero.
    let watch_stream = TcpStream::connect(addr).expect("watch connects");
    watch_stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("read timeout");
    (&watch_stream)
        .write_all(subscribe.as_bytes())
        .expect("send subscribe");
    let mut watch_reader = BufReader::new(&watch_stream);
    let ack = read_artifact(&mut watch_reader)
        .expect("well-framed ack")
        .expect("subscribe acks");
    let watch_id = dna_io::parse_notify(&ack)
        .expect("ack is a notify")
        .subscription;

    // The poller: a twin subscription on the same session, drained
    // after every single-epoch commit.
    let poll_ack = query_tcp(&addr.to_string(), &subscribe).expect("poll subscribe");
    let poll_id = dna_io::parse_notify(&poll_ack)
        .expect("ack is a notify")
        .subscription;
    let mut polled: Vec<dna_io::Notify> = Vec::new();
    for ep in &epochs {
        let trace = write_trace(&Trace {
            epochs: vec![ep.clone()],
        });
        let ack = query_tcp(&addr.to_string(), &trace).expect("epoch over tcp");
        assert!(
            matches!(
                dna_io::parse_response(&ack),
                Ok(Response::Ingested { epochs: 1, .. })
            ),
            "unexpected ingest ack:\n{ack}"
        );
        let batch = query_tcp(
            &addr.to_string(),
            &q(Some("watch"), QueryKind::Notifications { id: poll_id }),
        )
        .expect("poll over tcp");
        let n = dna_io::parse_notify(&batch).expect("poll answers with a notify");
        assert!(n.events.len() <= 1, "one commit queues at most one event");
        if !n.events.is_empty() {
            polled.push(n);
        }
    }

    // The pushed stream: one artifact per changed commit, in order.
    // (Ids differ between the two subscriptions; the *events* must
    // not.) A missing push trips the read timeout rather than hanging.
    let mut pushed: Vec<dna_io::Notify> = Vec::new();
    while pushed.len() < polled.len() {
        let artifact = read_artifact(&mut watch_reader)
            .expect("pushed artifact within the timeout")
            .expect("connection stays open");
        let n = dna_io::parse_notify(&artifact).expect("push is a notify");
        assert_eq!(n.subscription, watch_id);
        assert_eq!(n.events.len(), 1, "pushes carry one event per commit");
        pushed.push(n);
    }
    assert!(
        !polled.is_empty(),
        "workload must change the answer at least once"
    );
    assert!(
        polled.len() < epochs.len(),
        "workload must also contain suppressed (zero-byte) commits"
    );
    let pushed_events: Vec<_> = pushed.into_iter().flat_map(|n| n.events).collect();
    let polled_events: Vec<_> = polled.into_iter().flat_map(|n| n.events).collect();
    assert_eq!(
        pushed_events, polled_events,
        "pushed deltas must equal the poll-after-every-epoch stream"
    );
}

fn workload() -> (net_model::Snapshot, Vec<TraceEpoch>) {
    let ft = fat_tree(4, Routing::Ebgp);
    let mut gen = ScenarioGen::new(91);
    let labeled = gen.labeled_sequence(
        &ft.snapshot,
        &[ScenarioKind::LinkFailure, ScenarioKind::LinkRecovery],
        EPOCHS,
    );
    let epochs = labeled
        .into_iter()
        .map(|(kind, changes)| TraceEpoch {
            label: Some(kind.to_string()),
            changes,
        })
        .collect();
    (ft.snapshot, epochs)
}

/// Sequential oracle: the reach and blast responses after every epoch
/// prefix, plus the per-chunk ingest acknowledgements.
struct Oracle {
    reach: Vec<String>,
    blast: Vec<String>,
    acks: Vec<String>,
}

fn oracle(name: &str, snapshot: &net_model::Snapshot, epochs: &[TraceEpoch]) -> Oracle {
    let mut session =
        Session::open(name, snapshot.clone(), SessionConfig::default()).expect("session opens");
    let reach_kind = QueryKind::ReachPair {
        src: "edge0_0".into(),
        dst: "edge1_1".into(),
    };
    let blast_kind = QueryKind::Blast { last: EPOCHS };
    let mut reach = vec![dna_io::write_response(&session.answer(&reach_kind))];
    let mut blast = vec![dna_io::write_response(&session.answer(&blast_kind))];
    let mut acks = Vec::new();
    for chunk in epochs.chunks(CHUNK) {
        let mut flows = 0;
        for ep in chunk {
            flows += session.ingest(ep).expect("epoch applies");
            reach.push(dna_io::write_response(&session.answer(&reach_kind)));
            blast.push(dna_io::write_response(&session.answer(&blast_kind)));
        }
        acks.push(dna_io::write_response(&Response::Ingested {
            session: name.to_string(),
            epochs: chunk.len() as u64,
            flows: flows as u64,
            total: session.epochs() as u64,
        }));
    }
    Oracle { reach, blast, acks }
}

/// Eight TCP clients race read-only queries against a session that a
/// ninth connection is actively ingesting into — over the same
/// listener. Every raced answer must equal the sequential answer after
/// some epoch prefix, every ingest ack must be byte-identical to the
/// sequential ack, and the registry must prove the answers came from
/// published views rather than engine round trips.
#[test]
fn eight_tcp_clients_race_a_live_ingest() {
    let (snapshot, epochs) = workload();
    let oracle = oracle("live", &snapshot, &epochs);
    let (addr, views, _tx) = serve_tcp(vec![("live".into(), snapshot)]);

    // The ingesting client: one connection, trace artifacts in
    // CHUNK-epoch slices, reading back each acknowledgement.
    let writer = {
        let epochs = epochs.clone();
        std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("writer connects");
            let mut reader = BufReader::new(&stream);
            let mut acks = Vec::new();
            for chunk in epochs.chunks(CHUNK) {
                let trace = write_trace(&Trace {
                    epochs: chunk.to_vec(),
                });
                (&stream).write_all(trace.as_bytes()).expect("send trace");
                (&stream).flush().expect("flush trace");
                acks.push(
                    read_artifact(&mut reader)
                        .expect("well-framed ack")
                        .expect("one ack per trace"),
                );
            }
            acks
        })
    };
    // Eight racing readers, each on its own connection, each issuing a
    // fresh reach + blast query per round.
    let racers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..ROUNDS {
                    let reach = query_tcp(
                        &addr.to_string(),
                        &q(
                            Some("live"),
                            QueryKind::ReachPair {
                                src: "edge0_0".into(),
                                dst: "edge1_1".into(),
                            },
                        ),
                    )
                    .expect("reach over tcp");
                    let blast = query_tcp(
                        &addr.to_string(),
                        &q(Some("live"), QueryKind::Blast { last: EPOCHS }),
                    )
                    .expect("blast over tcp");
                    seen.push((reach, blast));
                }
                seen
            })
        })
        .collect();

    let acks = writer.join().expect("writer thread");
    assert_eq!(
        acks, oracle.acks,
        "ingest acks must match sequential replay"
    );
    let valid_reach: BTreeSet<&String> = oracle.reach.iter().collect();
    let valid_blast: BTreeSet<&String> = oracle.blast.iter().collect();
    let mut raced = 0u64;
    for racer in racers {
        for (reach, blast) in racer.join().expect("racer thread") {
            raced += 2;
            assert!(
                valid_reach.contains(&reach),
                "raced reach answer matches no sequential prefix state:\n{reach}"
            );
            assert!(
                valid_blast.contains(&blast),
                "raced blast answer matches no sequential prefix state:\n{blast}"
            );
        }
    }
    // After the writer's last ack the final view is already published
    // (views publish before the acknowledgement is sent), so a fresh
    // query must see exactly the all-epochs state.
    let final_reach = query_tcp(
        &addr.to_string(),
        &q(
            Some("live"),
            QueryKind::ReachPair {
                src: "edge0_0".into(),
                dst: "edge1_1".into(),
            },
        ),
    )
    .expect("final reach");
    assert_eq!(&final_reach, oracle.reach.last().unwrap());
    let final_blast = query_tcp(
        &addr.to_string(),
        &q(Some("live"), QueryKind::Blast { last: EPOCHS }),
    )
    .expect("final blast");
    assert_eq!(&final_blast, oracle.blast.last().unwrap());
    // Every raced query (plus the two closing ones) was answered from a
    // published view — the engine thread saw only the trace artifacts.
    assert_eq!(
        views.served(),
        raced + 2,
        "the snapshot read path must have served every query"
    );
}
