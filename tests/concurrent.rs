//! Concurrent multi-session ingest: two sessions, each with its own
//! engine thread behind the router, ingest interleaved traces while a
//! third client races reachability queries against both. Everything
//! observable is pinned against sequential replay:
//!
//! * every response the ingesting clients see is byte-identical to the
//!   one sequential ingest produces;
//! * every racing query answer equals the sequential answer after
//!   *some* prefix of that session's epochs (ingest is atomic per
//!   trace artifact, so no torn state is ever visible);
//! * the final history/stats queries agree with a sequentially-built
//!   session byte-for-byte.

use dna_io::{
    parse_response, write_query, write_trace, Query, QueryKind, Response, Trace, TraceEpoch,
};
use dna_serve::{pump_stream, pump_stream_as, read_artifact, Router, Session, SessionConfig};
use std::collections::BTreeSet;
use std::io::Cursor;
use std::sync::mpsc;
use topo_gen::{fat_tree, Routing, ScenarioGen, ScenarioKind};

const EPOCHS: usize = 8;
const CHUNK: usize = 2;

fn workload(routing: Routing, seed: u64) -> (net_model::Snapshot, Vec<TraceEpoch>) {
    let ft = fat_tree(4, routing);
    let mut gen = ScenarioGen::new(seed);
    let labeled = gen.labeled_sequence(
        &ft.snapshot,
        &[ScenarioKind::LinkFailure, ScenarioKind::LinkRecovery],
        EPOCHS,
    );
    assert_eq!(labeled.len(), EPOCHS);
    let epochs = labeled
        .into_iter()
        .map(|(kind, changes)| TraceEpoch {
            label: Some(kind.to_string()),
            changes,
        })
        .collect();
    (ft.snapshot, epochs)
}

fn reach_query(session: &str) -> String {
    write_query(&Query {
        session: Some(session.to_string()),
        kind: QueryKind::ReachPair {
            src: "edge0_0".into(),
            dst: "edge1_1".into(),
        },
    })
}

/// Sequential oracle for one session: the responses an unthreaded
/// server would produce — the ingest acknowledgements, the reach answer
/// after every epoch prefix, and the closing history queries.
struct Oracle {
    /// Reach response after 0, 1, ..., EPOCHS epochs.
    reach_by_prefix: Vec<String>,
    /// Ingest acknowledgement per CHUNK-epoch trace artifact.
    ingest_acks: Vec<String>,
    /// Closing blast + report responses.
    blast: String,
    report: String,
    epochs: usize,
}

fn oracle(name: &str, snapshot: &net_model::Snapshot, epochs: &[TraceEpoch]) -> Oracle {
    let mut session =
        Session::open(name, snapshot.clone(), SessionConfig::default()).expect("session opens");
    let reach = QueryKind::ReachPair {
        src: "edge0_0".into(),
        dst: "edge1_1".into(),
    };
    let mut reach_by_prefix = vec![dna_io::write_response(&session.answer(&reach))];
    let mut ingest_acks = Vec::new();
    for chunk in epochs.chunks(CHUNK) {
        let mut flows = 0;
        for ep in chunk {
            flows += session.ingest(ep).expect("epoch applies");
            reach_by_prefix.push(dna_io::write_response(&session.answer(&reach)));
        }
        ingest_acks.push(dna_io::write_response(&Response::Ingested {
            session: name.to_string(),
            epochs: chunk.len() as u64,
            flows: flows as u64,
            total: session.epochs() as u64,
        }));
    }
    Oracle {
        reach_by_prefix,
        ingest_acks,
        blast: dna_io::write_response(&session.answer(&QueryKind::Blast { last: EPOCHS })),
        report: dna_io::write_response(&session.answer(&QueryKind::Report {
            from: EPOCHS - 2,
            to: EPOCHS,
        })),
        epochs: session.epochs(),
    }
}

/// One ingesting client: alternates CHUNK-epoch trace artifacts with a
/// reach query, returning the response artifacts it saw.
fn ingest_client(
    tx: mpsc::Sender<dna_serve::Request>,
    session: String,
    epochs: Vec<TraceEpoch>,
) -> std::thread::JoinHandle<Vec<String>> {
    std::thread::spawn(move || {
        let mut stream = String::new();
        for chunk in epochs.chunks(CHUNK) {
            stream.push_str(&write_trace(&Trace {
                epochs: chunk.to_vec(),
            }));
            stream.push_str(&reach_query(&session));
        }
        let mut out = Vec::new();
        pump_stream_as(
            &tx,
            Some(&session),
            &mut Cursor::new(stream.into_bytes()),
            &mut out,
        )
        .expect("pump runs");
        split_artifacts(&String::from_utf8(out).expect("utf-8"))
    })
}

fn split_artifacts(text: &str) -> Vec<String> {
    let mut cursor = Cursor::new(text.as_bytes().to_vec());
    let mut out = Vec::new();
    while let Some(a) = read_artifact(&mut cursor).expect("well-framed") {
        out.push(a);
    }
    out
}

#[test]
fn concurrent_two_session_ingest_matches_sequential_replay() {
    let (snap_a, epochs_a) = workload(Routing::Ebgp, 77);
    let (snap_b, epochs_b) = workload(Routing::Ospf, 78);
    let oracle_a = oracle("a", &snap_a, &epochs_a);
    let oracle_b = oracle("b", &snap_b, &epochs_b);

    let mut router = Router::new(SessionConfig::default());
    router
        .preload(vec![("a".into(), snap_a), ("b".into(), snap_b)])
        .expect("parallel bring-up");
    let (tx, rx) = mpsc::channel();
    let engine = std::thread::spawn(move || router.run(rx));

    // Two ingesting clients run concurrently, one per session...
    let client_a = ingest_client(tx.clone(), "a".into(), epochs_a);
    let client_b = ingest_client(tx.clone(), "b".into(), epochs_b);
    // ...while a racer hammers reach queries against both.
    let racer = {
        let tx = tx.clone();
        std::thread::spawn(move || {
            let mut seen = Vec::new();
            for i in 0..40 {
                let q = reach_query(if i % 2 == 0 { "a" } else { "b" });
                let mut out = Vec::new();
                pump_stream(&tx, &mut Cursor::new(q.into_bytes()), &mut out).expect("pump runs");
                seen.push((i % 2, String::from_utf8(out).expect("utf-8")));
            }
            seen
        })
    };
    let got_a = client_a.join().expect("client a");
    let got_b = client_b.join().expect("client b");
    let raced = racer.join().expect("racer");

    // Ingest clients see exactly the sequential responses, in order:
    // per-session ordering is untouched by concurrency.
    for (oracle, got) in [(&oracle_a, &got_a), (&oracle_b, &got_b)] {
        assert_eq!(got.len(), EPOCHS / CHUNK * 2);
        for (i, chunk_pair) in got.chunks(2).enumerate() {
            assert_eq!(chunk_pair[0], oracle.ingest_acks[i], "ingest ack {i}");
            assert_eq!(
                chunk_pair[1],
                oracle.reach_by_prefix[(i + 1) * CHUNK],
                "reach after chunk {i}"
            );
        }
    }
    // Each raced answer equals the sequential answer after some epoch
    // prefix — never a torn or foreign state.
    for (which, response) in &raced {
        let oracle = if *which == 0 { &oracle_a } else { &oracle_b };
        let valid: BTreeSet<&String> = oracle.reach_by_prefix.iter().collect();
        assert!(
            valid.contains(response),
            "raced answer matches no sequential prefix state:\n{response}"
        );
    }
    // Closing queries: history and stats agree with sequential replay.
    let closing = format!(
        "{}{}{}{}",
        write_query(&Query {
            session: Some("a".into()),
            kind: QueryKind::Blast { last: EPOCHS },
        }),
        write_query(&Query {
            session: Some("a".into()),
            kind: QueryKind::Report {
                from: EPOCHS - 2,
                to: EPOCHS,
            },
        }),
        write_query(&Query {
            session: Some("b".into()),
            kind: QueryKind::Blast { last: EPOCHS },
        }),
        write_query(&Query {
            session: Some("b".into()),
            kind: QueryKind::Stats,
        }),
    );
    let mut out = Vec::new();
    pump_stream(&tx, &mut Cursor::new(closing.into_bytes()), &mut out).expect("pump runs");
    let closing = split_artifacts(&String::from_utf8(out).expect("utf-8"));
    assert_eq!(closing[0], oracle_a.blast);
    assert_eq!(closing[1], oracle_a.report);
    assert_eq!(closing[2], oracle_b.blast);
    match parse_response(&closing[3]).expect("stats parses") {
        Response::Stats(s) => {
            assert_eq!(s.session, "b");
            assert_eq!(s.epochs as usize, oracle_b.epochs);
            assert_eq!(s.mismatches, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    drop(tx);
    let summary = engine.join().expect("router thread");
    assert_eq!(summary.epochs as usize, 2 * EPOCHS);
    assert_eq!(summary.errors, 0);
}
