//! The telemetry plane, end to end and under fire:
//!
//! * `metrics` and `trace` queries answered live over the TCP front
//!   door while the queried session is mid-ingest, coming back as
//!   canonical `metrics` / `spans` artifacts with the counters the
//!   ingest must have bumped;
//! * a property: registry counters are monotone — no interleaving of
//!   handle operations and scrapes ever shows a counter decreasing;
//! * a torture test: eight writer threads hammer one histogram while a
//!   reader scrapes it, and every scrape upholds the documented torn-
//!   read bound `count >= Σ buckets` (writers bump the count before
//!   the bucket; the scraper reads buckets before the count).

use dna_io::{parse_metrics, parse_spans, write_query, write_trace, Query, QueryKind, Trace};
use dna_serve::{query_tcp, tcp_accept_loop, Router, SessionConfig, ViewRegistry};
use proptest::prelude::*;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use topo_gen::{fat_tree, Routing, ScenarioGen, ScenarioKind};

const EPOCHS: usize = 6;

fn q(session: Option<&str>, kind: QueryKind) -> String {
    write_query(&Query {
        session: session.map(str::to_string),
        kind,
    })
}

/// A router with published views behind a real TCP listener (the same
/// bring-up `tests/tcp.rs` uses).
fn serve_tcp(
    sessions: Vec<(String, net_model::Snapshot)>,
) -> (SocketAddr, mpsc::Sender<dna_serve::Request>) {
    let views = Arc::new(ViewRegistry::new());
    let mut router = Router::new(SessionConfig::default()).with_views(Arc::clone(&views));
    router.preload(sessions).expect("sessions open");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || router.run(rx));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let accept_tx = tx.clone();
    let hub = Arc::new(dna_serve::NotifyHub::new());
    std::thread::spawn(move || tcp_accept_loop(accept_tx, listener, views, hub));
    (addr, tx)
}

fn counter_value(m: &dna_io::MetricsReport, name: &str, session: Option<&str>) -> Option<u64> {
    m.counters
        .iter()
        .find(|r| r.name == name && r.session.as_deref() == session)
        .map(|r| r.value)
}

/// Ingests a generated trace over TCP, then scrapes `metrics` and
/// `trace` over the same listener: the scrape must be a canonical
/// artifact whose counters reflect the ingest (epochs applied, views
/// published, connections accepted), and the span dump must carry one
/// lifecycle row per epoch with coherent timings.
///
/// The registry is process-global, and the sibling tests in this
/// binary run concurrently against their own `Registry` instances —
/// so every global assertion here is a lower bound, and the
/// session-scoped ones are exact (the session name is unique to this
/// test).
#[test]
fn telemetry_queries_answer_live_over_tcp() {
    let ft = fat_tree(4, Routing::Ebgp);
    let mut gen = ScenarioGen::new(23);
    let epochs: Vec<_> = gen
        .labeled_sequence(
            &ft.snapshot,
            &[ScenarioKind::LinkFailure, ScenarioKind::LinkRecovery],
            EPOCHS,
        )
        .into_iter()
        .map(|(kind, changes)| dna_io::TraceEpoch {
            label: Some(kind.to_string()),
            changes,
        })
        .collect();
    let (addr, _tx) = serve_tcp(vec![("obs-live".into(), ft.snapshot)]);

    let trace = write_trace(&Trace {
        epochs: epochs.clone(),
    });
    let ack = query_tcp(&addr.to_string(), &trace).expect("trace over tcp");
    assert!(
        matches!(
            dna_io::parse_response(&ack).expect("ack parses"),
            dna_io::Response::Ingested { epochs: e, .. } if e == EPOCHS as u64
        ),
        "unexpected ingest ack:\n{ack}"
    );

    // Full scrape, no session filter.
    let scrape = query_tcp(&addr.to_string(), &q(None, QueryKind::Metrics)).expect("metrics");
    let m = parse_metrics(&scrape).expect("scrape is a canonical metrics artifact");
    assert_eq!(
        counter_value(&m, "epochs_applied", Some("obs-live")),
        Some(EPOCHS as u64),
        "every ingested epoch must be counted"
    );
    assert!(
        counter_value(&m, "view_publishes", Some("obs-live")).unwrap_or(0) >= 1,
        "the ingest must have published at least one view"
    );
    assert!(
        counter_value(&m, "tcp_connections", None).unwrap_or(0) >= 2,
        "the trace and metrics connections must both be counted"
    );
    let apply = m
        .histograms
        .iter()
        .find(|h| h.name == "epoch_apply_us" && h.session.as_deref() == Some("obs-live"))
        .expect("epoch apply latency histogram exists");
    assert_eq!(apply.count, EPOCHS as u64);
    assert!(apply.count >= apply.buckets.iter().map(|(_, n)| n).sum::<u64>());

    // A session-scoped scrape keeps that session's series (and the
    // process-global ones), drops everything else.
    let scoped = query_tcp(&addr.to_string(), &q(Some("obs-live"), QueryKind::Metrics))
        .expect("scoped metrics");
    let scoped = parse_metrics(&scoped).expect("scoped scrape parses");
    assert!(scoped
        .counters
        .iter()
        .all(|r| r.session.is_none() || r.session.as_deref() == Some("obs-live")));
    assert_eq!(
        counter_value(&scoped, "epochs_applied", Some("obs-live")),
        Some(EPOCHS as u64)
    );

    // The span ring holds one lifecycle row per epoch, in order, with
    // the stage timings this session actually went through.
    let dump = query_tcp(
        &addr.to_string(),
        &q(Some("obs-live"), QueryKind::TraceSpans { last: None }),
    )
    .expect("trace query");
    let spans = parse_spans(&dump).expect("dump is a canonical spans artifact");
    assert_eq!(spans.spans.len(), EPOCHS);
    for (i, s) in spans.spans.iter().enumerate() {
        assert_eq!(s.session, "obs-live");
        assert_eq!(s.epoch, i as u64);
        assert!(s.total_ns > 0, "epoch {i} recorded no wall-clock");
        assert!(s.changes > 0, "epoch {i} lost its change count");
        assert!(s.label.is_some(), "epoch {i} lost its scenario label");
    }
    // `trace 2` trims to the newest two rows.
    let tail = query_tcp(
        &addr.to_string(),
        &q(Some("obs-live"), QueryKind::TraceSpans { last: Some(2) }),
    )
    .expect("trace tail");
    let tail = parse_spans(&tail).expect("tail parses");
    assert_eq!(
        tail.spans,
        spans.spans[EPOCHS - 2..].to_vec(),
        "the last-n window must be the dump's suffix"
    );
}

/// Eight concurrent TCP clients scrape `metrics` while the session
/// they are watching ingests a live trace: every scrape any client
/// ever sees must be a well-formed artifact whose histograms satisfy
/// `count >= Σ buckets` (no torn scrape overcounts buckets) and whose
/// counters are monotone from one scrape to the next on the same
/// connection-per-query client.
#[test]
fn eight_tcp_clients_scraping_metrics_never_see_torn_histograms() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 12;
    let ft = fat_tree(4, Routing::Ebgp);
    let mut gen = ScenarioGen::new(47);
    let epochs: Vec<_> = gen
        .labeled_sequence(
            &ft.snapshot,
            &[ScenarioKind::LinkFailure, ScenarioKind::LinkRecovery],
            8,
        )
        .into_iter()
        .map(|(kind, changes)| dna_io::TraceEpoch {
            label: Some(kind.to_string()),
            changes,
        })
        .collect();
    let (addr, _tx) = serve_tcp(vec![("obs-race".into(), ft.snapshot)]);

    // One epoch per trace artifact maximizes the scrape/apply overlap.
    let writer = std::thread::spawn(move || {
        for ep in epochs {
            let trace = write_trace(&Trace { epochs: vec![ep] });
            let ack = query_tcp(&addr.to_string(), &trace).expect("trace over tcp");
            assert!(ack.contains("ok ingested"), "bad ack:\n{ack}");
        }
    });
    let scrapers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut floors: std::collections::BTreeMap<(String, Option<String>), u64> =
                    std::collections::BTreeMap::new();
                for _ in 0..ROUNDS {
                    let text = query_tcp(&addr.to_string(), &q(None, QueryKind::Metrics))
                        .expect("metrics over tcp");
                    let m = parse_metrics(&text).expect("every scrape is well-formed");
                    for h in &m.histograms {
                        let bucketed: u64 = h.buckets.iter().map(|(_, n)| n).sum();
                        assert!(
                            h.count >= bucketed,
                            "torn scrape of {:?}: count {} < bucketed {bucketed}",
                            h.name,
                            h.count
                        );
                    }
                    for c in &m.counters {
                        let seen = floors
                            .entry((c.name.clone(), c.session.clone()))
                            .or_default();
                        assert!(*seen <= c.value, "counter {:?} went backwards", c.name);
                        *seen = c.value;
                    }
                }
            })
        })
        .collect();
    writer.join().expect("writer thread");
    for s in scrapers {
        s.join().expect("scraper thread");
    }
    // At rest, the session's apply histogram books balance exactly.
    let settled = query_tcp(&addr.to_string(), &q(None, QueryKind::Metrics)).expect("metrics");
    let settled = parse_metrics(&settled).expect("parses");
    let apply = settled
        .histograms
        .iter()
        .find(|h| h.name == "epoch_apply_us" && h.session.as_deref() == Some("obs-race"))
        .expect("apply histogram");
    assert_eq!(apply.count, 8);
    assert_eq!(apply.buckets.iter().map(|(_, n)| n).sum::<u64>(), 8);
}

/// Eight writers hammer one histogram with observations spread across
/// every bucket while a reader scrapes continuously: each scrape must
/// satisfy `count >= Σ buckets` (the documented torn-read direction),
/// and after the writers join the totals must reconcile exactly.
#[test]
fn torn_histogram_scrapes_never_overcount_buckets() {
    const WRITERS: usize = 8;
    const OBS_PER_WRITER: u64 = 40_000;
    let reg = Arc::new(dna_obs::Registry::new());
    let done = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let h = reg.histogram("contended_us");
            std::thread::spawn(move || {
                for i in 0..OBS_PER_WRITER {
                    // Sweep the observations across all bucket bounds
                    // (and the overflow bucket) so torn reads can land
                    // anywhere in the array.
                    let us = (i.wrapping_mul(7).wrapping_add(w as u64)) % 2_000_000;
                    h.observe_ns(us * 1_000);
                }
            })
        })
        .collect();

    let reader = {
        let reg = Arc::clone(&reg);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let h = reg.histogram("contended_us");
            let mut scrapes = 0u64;
            let mut last_count = 0u64;
            while !done.load(Ordering::SeqCst) {
                let snap = h.snapshot();
                let bucketed: u64 = snap.buckets.iter().sum();
                assert!(
                    snap.count >= bucketed,
                    "torn scrape shows more bucketed observations ({bucketed}) \
                     than counted ({})",
                    snap.count
                );
                assert!(snap.count >= last_count, "count went backwards");
                last_count = snap.count;
                scrapes += 1;
            }
            scrapes
        })
    };

    for w in writers {
        w.join().expect("writer");
    }
    done.store(true, Ordering::SeqCst);
    let scrapes = reader.join().expect("reader");
    assert!(scrapes > 0, "the reader never got a scrape in");

    let total = WRITERS as u64 * OBS_PER_WRITER;
    let settled = reg.histogram("contended_us").snapshot();
    assert_eq!(settled.count, total);
    assert_eq!(
        settled.buckets.iter().sum::<u64>(),
        total,
        "at rest the books balance"
    );
}

/// One step of the monotonicity property: an operation against a
/// fresh registry, plus which counter it touches (if any).
#[derive(Debug, Clone)]
enum Op {
    Count {
        name: usize,
        session: Option<usize>,
        n: u64,
    },
    Gauge {
        name: usize,
        session: Option<usize>,
        set: bool,
        n: u64,
    },
    Observe {
        name: usize,
        ns: u64,
    },
    Scrape {
        session: Option<usize>,
    },
}

fn op() -> impl Strategy<Value = Op> {
    let name = 0usize..3;
    let session = prop::option::of(0usize..3);
    prop_oneof![
        (name.clone(), session.clone(), 0u64..100).prop_map(|(name, session, n)| Op::Count {
            name,
            session,
            n
        }),
        (name.clone(), session.clone(), any::<bool>(), 0u64..100).prop_map(
            |(name, session, set, n)| Op::Gauge {
                name,
                session,
                set,
                n
            }
        ),
        (name, 0u64..5_000_000).prop_map(|(name, ns)| Op::Observe { name, ns }),
        session.prop_map(|session| Op::Scrape { session }),
    ]
}

const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];
const SESSIONS: [&str; 3] = ["s0", "s1", "s2"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(64, 0x0B5_2026))]

    /// Counters only ever move up: across any interleaving of counter
    /// bumps, gauge movement, histogram observations and (filtered)
    /// scrapes, every counter value seen by any scrape — and every
    /// histogram count — is monotone non-decreasing series-by-series,
    /// and the final scrape equals the sum of the bumps.
    #[test]
    fn counters_are_monotone_under_any_interleaving(ops in prop::collection::vec(op(), 1..80)) {
        let reg = dna_obs::Registry::new();
        let mut expected: std::collections::BTreeMap<(usize, Option<usize>), u64> =
            std::collections::BTreeMap::new();
        let mut floor: std::collections::BTreeMap<(String, Option<String>), u64> =
            std::collections::BTreeMap::new();
        for o in &ops {
            match o {
                Op::Count { name, session, n } => {
                    let c = match session {
                        Some(s) => reg.counter_for(NAMES[*name], SESSIONS[*s]),
                        None => reg.counter(NAMES[*name]),
                    };
                    c.add(*n);
                    *expected.entry((*name, *session)).or_default() += n;
                }
                Op::Gauge { name, session, set, n } => {
                    let g = match session {
                        Some(s) => reg.gauge_for(NAMES[*name], SESSIONS[*s]),
                        None => reg.gauge(NAMES[*name]),
                    };
                    if *set { g.set(*n) } else { g.sub(*n) }
                }
                Op::Observe { name, ns } => reg.histogram(NAMES[*name]).observe_ns(*ns),
                Op::Scrape { session } => {
                    let snap = reg.snapshot(session.map(|s| SESSIONS[s]));
                    for c in &snap.counters {
                        let key = (c.name.clone(), c.session.clone());
                        let seen = floor.entry(key).or_default();
                        prop_assert!(c.value >= *seen, "counter {} went backwards", c.name);
                        *seen = c.value;
                    }
                    for h in &snap.histograms {
                        let key = (format!("hist:{}", h.name), h.session.clone());
                        let seen = floor.entry(key).or_default();
                        prop_assert!(h.snapshot.count >= *seen, "histogram {} count went backwards", h.name);
                        *seen = h.snapshot.count;
                    }
                }
            }
        }
        let final_snap = reg.snapshot(None);
        for ((name, session), want) in &expected {
            let got = final_snap
                .counters
                .iter()
                .find(|c| c.name == NAMES[*name]
                    && c.session.as_deref() == session.map(|s| SESSIONS[s]))
                .map(|c| c.value);
            prop_assert_eq!(got, Some(*want), "counter total must equal the sum of its bumps");
        }
    }
}
