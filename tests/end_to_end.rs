//! Cross-crate integration tests: the full differential pipeline against
//! the from-scratch baseline on generated topologies (experiment E8's
//! correctness property), plus end-to-end behavior checks.

use dna_core::{DiffEngine, FlowChangeKind, FlowDiff, ScratchDiffer};
use net_model::{Change, ChangeSet, Flow, Snapshot};
use topo_gen::{fat_tree, wan, Routing, ScenarioGen, ScenarioKind, WanShape, ALL_SCENARIOS};

/// Compares the two analyzers semantically: identical FIBs and identical
/// reachability on the union of both probe sets.
fn assert_equivalent(eng: &DiffEngine, scratch: &ScratchDiffer, ctx: &str) {
    let fib_inc = eng.fib();
    let fib_scr = scratch.fib().expect("baseline simulates");
    assert_eq!(fib_inc, fib_scr, "FIB mismatch {ctx}");
    // Probe-based reachability comparison: build a fresh verifier for the
    // scratch side through a fresh DiffEngine (state-free check).
    let fresh = DiffEngine::new(scratch.snapshot().clone()).expect("fresh engine");
    let mut probes: Vec<Flow> = eng.probe_flows();
    probes.extend(fresh.probe_flows());
    probes.sort();
    probes.dedup();
    for dev in scratch.snapshot().devices.keys() {
        for f in &probes {
            assert_eq!(
                eng.query(dev, f),
                fresh.query(dev, f),
                "reachability mismatch at {dev} for {f:?} {ctx}"
            );
        }
    }
}

fn run_equivalence(snap: Snapshot, seed: u64, steps: usize) {
    let mut eng = DiffEngine::new(snap.clone()).expect("engine");
    let mut scratch = ScratchDiffer::new(snap.clone()).expect("baseline");
    assert_equivalent(&eng, &scratch, "initially");
    let mut gen = ScenarioGen::new(seed);
    let seq = gen.sequence(&snap, ALL_SCENARIOS, steps);
    assert!(seq.len() >= steps / 2);
    for (i, cs) in seq.iter().enumerate() {
        let d1 = eng.apply(cs).expect("incremental");
        let d2 = scratch.apply(cs).expect("scratch");
        // Identical control-plane deltas (both canonical).
        assert_eq!(d1.fib, d2.fib, "fib delta mismatch at step {i}");
        assert_eq!(d1.rib, d2.rib, "rib delta mismatch at step {i}");
        assert_equivalent(&eng, &scratch, &format!("after step {i}"));
    }
}

#[test]
fn e8_equivalence_fat_tree_ebgp() {
    let ft = fat_tree(4, Routing::Ebgp);
    run_equivalence(ft.snapshot, 101, 12);
}

#[test]
fn e8_equivalence_fat_tree_ospf() {
    let ft = fat_tree(4, Routing::Ospf);
    run_equivalence(ft.snapshot, 103, 12);
}

#[test]
fn e8_equivalence_wan_mesh() {
    let w = wan(10, WanShape::Mesh { extra: 5 }, 8, 107);
    run_equivalence(w.snapshot, 109, 12);
}

/// Seeded cross-analyzer regression: on a fixed topology driving a fixed
/// scenario sequence, [`DiffEngine`] and [`ScratchDiffer`] must report the
/// *same* [`dna_core::BehaviorDiff`] at every step — not just matching
/// FIB/RIB deltas but identical flow-level impact classes. `stats` is
/// excluded by design: it holds engine-specific work counters. Flow lists
/// are compared order-insensitively; neither analyzer promises an order.
fn assert_identical_behavior_diffs(snap: Snapshot, seed: u64, steps: usize, ctx: &str) {
    let mut eng = DiffEngine::new(snap.clone()).expect("engine");
    let mut scratch = ScratchDiffer::new(snap.clone()).expect("baseline");
    let mut gen = ScenarioGen::new(seed);
    let seq = gen.sequence(&snap, ALL_SCENARIOS, steps);
    assert!(!seq.is_empty(), "{ctx}: seed {seed} generated no scenarios");
    let sort_key = |f: &FlowDiff| (f.src.clone(), f.example, f.headers.clone());
    for (i, cs) in seq.iter().enumerate() {
        let d1 = eng.apply(cs).expect("incremental");
        let d2 = scratch.apply(cs).expect("scratch");
        assert_eq!(d1.rib, d2.rib, "{ctx}: rib delta diverged at step {i}");
        assert_eq!(d1.fib, d2.fib, "{ctx}: fib delta diverged at step {i}");
        let mut f1 = d1.flows.clone();
        let mut f2 = d2.flows.clone();
        f1.sort_by_key(sort_key);
        f2.sort_by_key(sort_key);
        assert_eq!(f1, f2, "{ctx}: flow diffs diverged at step {i}");
    }
}

#[test]
fn behavior_diffs_identical_fat_tree_ebgp_seeded() {
    let ft = fat_tree(4, Routing::Ebgp);
    assert_identical_behavior_diffs(ft.snapshot, 0xDA7A_0001, 10, "k=4 eBGP fat-tree");
}

#[test]
fn behavior_diffs_identical_fat_tree_ospf_seeded() {
    let ft = fat_tree(4, Routing::Ospf);
    assert_identical_behavior_diffs(ft.snapshot, 0xDA7A_0002, 10, "k=4 OSPF fat-tree");
}

#[test]
fn behavior_diffs_identical_wan_mesh_seeded() {
    let w = wan(12, WanShape::Mesh { extra: 6 }, 8, 0xDA7A_0003);
    assert_identical_behavior_diffs(w.snapshot, 0xDA7A_0004, 10, "WAN-12 OSPF mesh");
}

#[test]
fn link_failure_reroutes_instead_of_losing_flows() {
    // In a fat-tree, a single agg-core link failure must never lose
    // pod-to-pod reachability (there are redundant paths).
    let ft = fat_tree(4, Routing::Ebgp);
    let mut eng = DiffEngine::new(ft.snapshot.clone()).unwrap();
    // Pick an aggregation-to-core link.
    let link = ft
        .snapshot
        .links
        .iter()
        .find(|l| {
            l.a.device.starts_with("agg") && l.b.device.starts_with("core")
                || l.a.device.starts_with("core") && l.b.device.starts_with("agg")
        })
        .unwrap()
        .clone();
    let diff = eng
        .apply(&ChangeSet::single(Change::LinkDown(link.clone())))
        .unwrap();
    assert!(!diff.is_noop());
    // A core that lost its only link into a pod legitimately loses
    // reachability *from itself* (cores are not interconnected); the
    // fabric guarantee is that no edge or aggregation switch loses flows.
    // The failed link's own /31 subnet is likewise exempt: the only path
    // to a point-to-point address is the link itself.
    let link_subnet = ft.snapshot.devices[&link.a.device].interfaces[&link.a.iface].prefix;
    for f in &diff.flows {
        if f.src.starts_with("core") || link_subnet.contains(f.example.dst) {
            continue;
        }
        assert_ne!(
            dna_core::classify(f),
            FlowChangeKind::Lost,
            "fabric redundancy violated: {f:?}"
        );
    }
}

#[test]
fn prefix_withdrawal_loses_exactly_that_subnet() {
    let ft = fat_tree(4, Routing::Ebgp);
    let (owner, prefix) = ft.server_subnets[0].clone();
    let mut eng = DiffEngine::new(ft.snapshot.clone()).unwrap();
    let diff = eng
        .apply(&ChangeSet::single(Change::BgpNetworkRemove {
            device: owner.clone(),
            prefix,
        }))
        .unwrap();
    assert!(!diff.flows.is_empty());
    // Every affected flow class targets the withdrawn subnet.
    for f in &diff.flows {
        assert!(
            prefix.contains(f.example.dst),
            "unrelated flow affected: {f:?}"
        );
    }
    // And other subnets still reach their owners.
    let (_, other_prefix) = ft.server_subnets[1].clone();
    let probe = Flow::tcp_to(other_prefix.nth_host(5), 80);
    let outcomes = eng.query("edge1_0", &probe);
    assert!(outcomes
        .iter()
        .any(|o| matches!(o, data_plane::Outcome::Delivered(_))));
}

#[test]
fn acl_insertion_filters_matching_traffic_only() {
    use net_model::acl::{AclEntry, Action, FlowMatch};
    let ft = fat_tree(4, Routing::Ospf);
    let (victim, vprefix) = ft.server_subnets[2].clone();
    let mut eng = DiffEngine::new(ft.snapshot.clone()).unwrap();
    // Block traffic to the victim subnet at a core switch's ingress.
    let core = "core0";
    let iface = ft.snapshot.devices[core]
        .interfaces
        .keys()
        .next()
        .unwrap()
        .clone();
    let cs = ChangeSet::of(vec![
        Change::AclEntryAdd {
            device: core.into(),
            acl: "block".into(),
            entry: AclEntry {
                seq: 10,
                action: Action::Deny,
                matches: FlowMatch::dst(vprefix),
            },
        },
        Change::AclEntryAdd {
            device: core.into(),
            acl: "block".into(),
            entry: AclEntry {
                seq: 20,
                action: Action::Permit,
                matches: FlowMatch::any(),
            },
        },
        Change::SetAclIn {
            device: core.into(),
            iface,
            acl: Some("block".into()),
        },
    ]);
    let diff = eng.apply(&cs).unwrap();
    // Only flows destined to the victim prefix are affected.
    for f in &diff.flows {
        assert!(vprefix.contains(f.example.dst), "collateral: {f:?}");
        assert!(
            f.after
                .iter()
                .any(|o| matches!(o, data_plane::Outcome::Filtered(d) if d == core))
                || !f
                    .before
                    .iter()
                    .any(|o| matches!(o, data_plane::Outcome::Filtered(_)))
        );
    }
    let _ = victim;
}

#[test]
fn noop_changes_report_noop() {
    let ft = fat_tree(4, Routing::Ospf);
    let link = ft.snapshot.links[0].clone();
    let mut eng = DiffEngine::new(ft.snapshot).unwrap();
    // Up-ing an already-up link changes nothing.
    let diff = eng.apply(&ChangeSet::single(Change::LinkUp(link))).unwrap();
    assert!(diff.is_noop());
}

#[test]
fn errors_leave_engine_usable() {
    let ft = fat_tree(4, Routing::Ospf);
    let mut eng = DiffEngine::new(ft.snapshot.clone()).unwrap();
    let err = eng.apply(&ChangeSet::single(Change::DeviceDown("ghost".into())));
    assert!(err.is_err());
    // Engine still works after the failed apply.
    let link = ft.snapshot.links[0].clone();
    let diff = eng
        .apply(&ChangeSet::single(Change::LinkDown(link)))
        .unwrap();
    assert!(!diff.is_noop());
}

#[test]
fn invalid_snapshot_rejected() {
    use net_model::NetBuilder;
    let mut snap = NetBuilder::new()
        .router("r1")
        .iface("r1", "eth0", "10.0.0.1/31")
        .build();
    // Dangle an ACL reference.
    snap.devices
        .get_mut("r1")
        .unwrap()
        .interfaces
        .get_mut("eth0")
        .unwrap()
        .acl_in = Some("ghost".into());
    assert!(DiffEngine::new(snap.clone()).is_err());
    assert!(ScratchDiffer::new(snap).is_err());
}

#[test]
fn incremental_is_faster_than_scratch_on_small_changes() {
    // Not a benchmark — a smoke check that the differential path does
    // asymptotically less work (tuple counts, not wall clock).
    let ft = fat_tree(6, Routing::Ebgp);
    let mut eng = DiffEngine::new(ft.snapshot.clone()).unwrap();
    let mut gen = ScenarioGen::new(5);
    let cs = gen
        .generate(eng.snapshot(), ScenarioKind::LinkFailure)
        .unwrap();
    let diff = eng.apply(&cs).unwrap();
    // The initial load processes hundreds of thousands of tuples; a single
    // link failure should touch well under a tenth of that.
    assert!(
        diff.stats.cp_tuples > 0 && diff.stats.cp_tuples < 200_000,
        "cp_tuples = {}",
        diff.stats.cp_tuples
    );
}
