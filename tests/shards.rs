//! Shard-equivalence golden tests: the sharded init pipeline must be
//! *observationally identical* to the single-threaded path. Every
//! corpus scenario is replayed through engines brought up with
//! `--shards 1/2/4` and must reproduce the checked-in report
//! byte-for-byte; the pinned service smoke must produce the identical
//! response bytes from a 4-shard session. (CI repeats both through the
//! `dna` binary; `crates/control-plane/tests/sharding.rs` additionally
//! proptests random, unbalanced partitions.)

use dna_core::{ReplayMode, ReplaySession};
use dna_io::{parse_snapshot, parse_trace, write_query, write_report, EpochDiff, Report};
use dna_serve::{serve_stream, SessionConfig, SessionManager};
use std::io::Cursor;

const CORPUS: &[(&str, &str, &str, &str)] = &[
    (
        "ft4_failures",
        include_str!("corpus/ft4_failures.snap.dna"),
        include_str!("corpus/ft4_failures.trace.dna"),
        include_str!("corpus/ft4_failures.report.dna"),
    ),
    (
        "ft6_policy",
        include_str!("corpus/ft6_policy.snap.dna"),
        include_str!("corpus/ft6_policy.trace.dna"),
        include_str!("corpus/ft6_policy.report.dna"),
    ),
    (
        "wan16_mixed",
        include_str!("corpus/wan16_mixed.snap.dna"),
        include_str!("corpus/wan16_mixed.trace.dna"),
        include_str!("corpus/wan16_mixed.report.dna"),
    ),
];

#[test]
fn corpus_reports_are_byte_identical_under_sharded_init() {
    for (name, snap_text, trace_text, report_text) in CORPUS {
        let snap = parse_snapshot(snap_text).expect("corpus snapshot parses");
        let trace = parse_trace(trace_text).expect("corpus trace parses");
        for shards in [1usize, 2, 4] {
            let mut session =
                ReplaySession::with_shards(snap.clone(), ReplayMode::Differential, shards)
                    .expect("sharded bring-up");
            let mut report = Report::default();
            for ep in &trace.epochs {
                let out = session.step(&ep.changes).expect("epoch applies");
                report
                    .epochs
                    .push(EpochDiff::from_behavior(ep.label.clone(), out.primary()));
            }
            assert_eq!(
                write_report(&report),
                *report_text,
                "{name}: report drifted under --shards {shards}"
            );
        }
    }
}

/// The pinned service smoke, from a session brought up with 4 shards:
/// response bytes must match the same golden file the single-threaded
/// smoke pins (tests/service.rs and CI).
#[test]
fn service_smoke_responses_are_byte_identical_under_sharded_init() {
    let snapshot =
        parse_snapshot(include_str!("corpus/ft4_failures.snap.dna")).expect("snapshot parses");
    let q = |kind: dna_io::QueryKind| {
        write_query(&dna_io::Query {
            session: None,
            kind,
        })
    };
    let input = format!(
        "{}{}{}{}",
        include_str!("corpus/ft4_failures.trace.dna"),
        q(dna_io::QueryKind::ReachPair {
            src: "edge0_0".into(),
            dst: "edge1_1".into(),
        }),
        q(dna_io::QueryKind::Blast { last: 8 }),
        q(dna_io::QueryKind::Report { from: 0, to: 1 }),
    );
    let mut mgr = SessionManager::new(SessionConfig {
        shards: 4,
        ..Default::default()
    });
    mgr.open("ft4_failures", snapshot).expect("session opens");
    let mut out = Vec::new();
    let summary = serve_stream(
        &mut mgr,
        None,
        &mut Cursor::new(input.into_bytes()),
        &mut out,
    )
    .expect("serve loop runs");
    assert_eq!(summary.errors, 0);
    assert_eq!(
        String::from_utf8(out).expect("utf-8"),
        include_str!("corpus/service_smoke.expected.dna"),
        "4-shard service responses drifted from the pinned smoke"
    );
}
