//! The health & accounting plane, end to end:
//!
//! * `health` is a transport-level answer: the same registry state must
//!   render **byte-identically** over all four transports — the pipe
//!   server, the unix-socket broker, the router's engine channel, and
//!   the TCP front door;
//! * the watchdog semantics hold under forced conditions: a saturated
//!   ingest queue degrades its session *and* the server rollup, while a
//!   failed (panic-fenced) session stays contained — listed `failed`,
//!   server still `ok`;
//! * `history` carries enough to derive real rates: two samples
//!   recorded around a live TCP ingest show a nonzero
//!   `epochs_applied` per-second rate for the ingesting session.
//!
//! Everything lives in ONE test function: the registry, history ring
//! and span rings are process-global, so sequencing inside a single
//! `#[test]` is what makes the byte-identity assertions meaningful.

use dna_io::{
    parse_health, parse_history, write_query, write_trace, HealthStatus, Query, QueryKind, Trace,
};
use dna_serve::{
    query_tcp, run_broker, serve_stream, tcp_accept_loop, Request, Router, SessionConfig,
    SessionManager, ViewRegistry,
};
use std::io::Cursor;
use std::net::TcpListener;
use std::sync::{mpsc, Arc};
use topo_gen::{fat_tree, Routing, ScenarioGen, ScenarioKind};

const EPOCHS: usize = 4;

fn q(kind: QueryKind) -> String {
    write_query(&Query {
        session: None,
        kind,
    })
}

/// Converts a parsed wire `history` artifact back into the obs layer's
/// sample type so the same `dna_obs::rates` derivation the CLI renders
/// can be asserted against.
fn obs_samples(h: &dna_io::HistoryReport) -> Vec<dna_obs::Sample> {
    let rows = |rows: &[dna_io::SeriesRow]| {
        rows.iter()
            .map(|r| dna_obs::SeriesValue {
                name: r.name.clone(),
                session: r.session.clone(),
                value: r.value,
            })
            .collect()
    };
    h.samples
        .iter()
        .map(|s| dna_obs::Sample {
            t_ms: s.t_ms,
            counters: rows(&s.counters),
            gauges: rows(&s.gauges),
        })
        .collect()
}

#[test]
fn health_is_byte_identical_on_all_four_transports() {
    let ft = fat_tree(4, Routing::Ebgp);
    let mut gen = ScenarioGen::new(71);
    let epochs: Vec<_> = gen
        .labeled_sequence(
            &ft.snapshot,
            &[ScenarioKind::LinkFailure, ScenarioKind::LinkRecovery],
            EPOCHS,
        )
        .into_iter()
        .map(|(kind, changes)| dna_io::TraceEpoch {
            label: Some(kind.to_string()),
            changes,
        })
        .collect();

    // A router with published views behind a real TCP listener.
    let views = Arc::new(ViewRegistry::new());
    let mut router = Router::new(SessionConfig::default()).with_views(Arc::clone(&views));
    router
        .preload(vec![("hp".into(), ft.snapshot)])
        .expect("session opens");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || router.run(rx));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let accept_tx = tx.clone();
    let hub = Arc::new(dna_serve::NotifyHub::new());
    std::thread::spawn(move || tcp_accept_loop(accept_tx, listener, views, hub));

    // ---- history, phase 1: a sample before any ingest. ----
    dna_obs::history().record(dna_obs::uptime_ms(), &dna_obs::global().snapshot(None));

    // Live ingest over TCP.
    let ack = query_tcp(&addr, &write_trace(&Trace { epochs })).expect("trace over tcp");
    assert!(
        matches!(
            dna_io::parse_response(&ack).expect("ack parses"),
            dna_io::Response::Ingested { epochs: e, .. } if e == EPOCHS as u64
        ),
        "unexpected ingest ack:\n{ack}"
    );

    // ---- history, phase 2: a sample after, on a nonzero window. ----
    std::thread::sleep(std::time::Duration::from_millis(20));
    dna_obs::history().record(dna_obs::uptime_ms(), &dna_obs::global().snapshot(None));

    // ---- health, all four transports, byte for byte. ----
    let health_q = q(QueryKind::Health);

    // 1. TCP front door (answered on the connection thread).
    let over_tcp = query_tcp(&addr, &health_q).expect("health over tcp");

    // 2. The router's engine-side request channel (what a unix-socket
    //    accept loop in router mode forwards to).
    let (rtx, rrx) = mpsc::channel();
    tx.send(Request {
        text: health_q.clone(),
        session: None,
        reply: rtx,
    })
    .expect("router request");
    let over_router = rrx.recv().expect("router reply");

    // 3. The single-threaded pipe server. An empty manager: health is
    //    a transport-level answer and must not need an open session.
    let mut pipe_mgr = SessionManager::new(Default::default());
    let mut pipe_out = Vec::new();
    serve_stream(
        &mut pipe_mgr,
        None,
        &mut Cursor::new(health_q.clone().into_bytes()),
        &mut pipe_out,
    )
    .expect("pipe serve");
    let over_pipe = String::from_utf8(pipe_out).expect("utf-8");

    // 4. The broker pump (the unix-socket transport's engine side).
    let (btx, brx) = mpsc::channel();
    let broker = std::thread::spawn(move || {
        let mut mgr = SessionManager::new(Default::default());
        run_broker(&mut mgr, brx)
    });
    let (reply_tx, reply_rx) = mpsc::channel();
    btx.send(Request {
        text: health_q.clone(),
        session: None,
        reply: reply_tx,
    })
    .expect("broker request");
    let over_broker = reply_rx.recv().expect("broker reply");
    drop(btx);
    broker.join().expect("broker thread");

    assert_eq!(over_tcp, over_router, "tcp vs router health bytes drifted");
    assert_eq!(over_tcp, over_pipe, "tcp vs pipe health bytes drifted");
    assert_eq!(over_tcp, over_broker, "tcp vs broker health bytes drifted");

    let healthy = parse_health(&over_tcp).expect("health parses");
    assert_eq!(healthy.server, HealthStatus::Ok);
    let hp = healthy
        .sessions
        .iter()
        .find(|s| s.name == "hp")
        .expect("the ingesting session is listed");
    assert_eq!((hp.status, hp.reason.as_deref()), (HealthStatus::Ok, None));

    // ---- forced degradation: a saturated ingest queue. ----
    let sat = dna_obs::SessionAccounting::register(dna_obs::global(), "hp-sat");
    sat.beat(); // fresh heartbeat: depth, not staleness, is the finding
    sat.queue_depth.set(65); // default DNA_OBS_QUEUE_DEPTH_WARN is 64
    let degraded = parse_health(&query_tcp(&addr, &health_q).expect("health")).expect("parses");
    assert_eq!(
        degraded.server,
        HealthStatus::Degraded,
        "a degraded session must degrade the server rollup"
    );
    let row = degraded
        .sessions
        .iter()
        .find(|s| s.name == "hp-sat")
        .expect("saturated session listed");
    assert_eq!(
        (row.status, row.reason.as_deref()),
        (HealthStatus::Degraded, Some("queue-depth"))
    );
    sat.retire(dna_obs::global());

    // ---- forced failure: a panic-fenced session stays contained. ----
    let dead = dna_obs::SessionAccounting::register(dna_obs::global(), "hp-dead");
    dead.failed.set(1);
    let contained = parse_health(&query_tcp(&addr, &health_q).expect("health")).expect("parses");
    assert_eq!(
        contained.server,
        HealthStatus::Ok,
        "a failed session is fenced off, not a server-level failure"
    );
    let row = contained
        .sessions
        .iter()
        .find(|s| s.name == "hp-dead")
        .expect("failed session listed");
    assert_eq!(
        (row.status, row.reason.as_deref()),
        (HealthStatus::Failed, Some("panic"))
    );
    dead.retire(dna_obs::global());

    // Retiring both restores the exact pre-fault bytes.
    let restored = query_tcp(&addr, &health_q).expect("health");
    assert_eq!(restored, over_tcp, "retired sessions must leave no residue");

    // ---- history --rates: the ingest shows up as a real rate. ----
    let dump = query_tcp(&addr, &q(QueryKind::History { last: None })).expect("history over tcp");
    let report = parse_history(&dump).expect("dump is a canonical history artifact");
    assert!(
        report.samples.len() >= 2,
        "both recorded samples must be retained"
    );
    let rates = dna_obs::rates(&obs_samples(&report));
    let applied = rates
        .iter()
        .find(|r| r.name == "epochs_applied" && r.session.as_deref() == Some("hp"))
        .expect("the ingesting session has an epochs_applied rate");
    assert!(
        applied.per_second > 0.0,
        "a live ingest inside the window must derive a nonzero rate, got {}",
        applied.per_second
    );
    // `history 1` trims to the freshest sample (rates then degenerate).
    let tail = parse_history(
        &query_tcp(&addr, &q(QueryKind::History { last: Some(1) })).expect("history tail"),
    )
    .expect("tail parses");
    assert_eq!(tail.samples.len(), 1);
    assert_eq!(
        tail.samples.last(),
        report.samples.last(),
        "the last-n window must be the dump's suffix"
    );
}
