//! Scenario-corpus golden tests: a checked-in set of real-world-shaped
//! workloads — fat-tree fabrics and a WAN mesh under failure, recovery,
//! ACL, local-pref and origination churn — each pinned as a
//! (snapshot, trace, report) triple of `dna-io` fixtures. Every trace is
//! replayed through BOTH analyzers and must reproduce the checked-in
//! report **byte-for-byte**, making the corpus a regression net over the
//! wire format, the analyzers' semantics and their equivalence at once.
//! The same fixtures drive the CI service smoke (`dna serve` on a corpus
//! snapshot) and are stable inputs for `dna-serve` sessions.
//!
//! Regenerating after an intentional change (seeds are the fixture
//! names' contract — keep them):
//! ```sh
//! cd tests/corpus
//! dna dump --topo fat-tree --k 4 --routing ebgp --seed 1007 \
//!     --out ft4_failures.snap.dna --trace ft4_failures.trace.dna --epochs 8 \
//!     --scenarios link-failure,link-recovery,device-failure,device-recovery
//! dna dump --topo fat-tree --k 6 --routing ebgp --seed 1013 \
//!     --out ft6_policy.snap.dna --trace ft6_policy.trace.dna --epochs 12 \
//!     --scenarios acl-insert,acl-remove,local-pref-change,prefix-withdraw,prefix-announce
//! dna dump --topo wan --n 16 --shape mesh --extra 8 --max-cost 8 --seed 1023 \
//!     --out wan16_mixed.snap.dna --trace wan16_mixed.trace.dna --epochs 8 \
//!     --scenarios link-failure,device-failure,acl-insert,ospf-cost-change
//! for w in ft4_failures ft6_policy wan16_mixed; do
//!     dna diff $w.snap.dna $w.trace.dna --out $w.report.dna
//! done
//! ```

use dna_core::{ReplayMode, ReplaySession};
use dna_io::{
    parse_report, parse_snapshot, parse_trace, write_report, write_snapshot, write_trace,
    EpochDiff, Report,
};

struct Workload {
    name: &'static str,
    snapshot: &'static str,
    trace: &'static str,
    report: &'static str,
}

const CORPUS: &[Workload] = &[
    Workload {
        name: "ft4_failures",
        snapshot: include_str!("corpus/ft4_failures.snap.dna"),
        trace: include_str!("corpus/ft4_failures.trace.dna"),
        report: include_str!("corpus/ft4_failures.report.dna"),
    },
    Workload {
        name: "ft6_policy",
        snapshot: include_str!("corpus/ft6_policy.snap.dna"),
        trace: include_str!("corpus/ft6_policy.trace.dna"),
        report: include_str!("corpus/ft6_policy.report.dna"),
    },
    Workload {
        name: "wan16_mixed",
        snapshot: include_str!("corpus/wan16_mixed.snap.dna"),
        trace: include_str!("corpus/wan16_mixed.trace.dna"),
        report: include_str!("corpus/wan16_mixed.report.dna"),
    },
];

#[test]
fn corpus_fixtures_are_canonical() {
    for w in CORPUS {
        let snap = parse_snapshot(w.snapshot).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(
            write_snapshot(&snap),
            w.snapshot,
            "{}: snapshot format drifted",
            w.name
        );
        assert!(
            snap.validate().is_empty(),
            "{}: snapshot must be valid",
            w.name
        );
        let trace = parse_trace(w.trace).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(write_trace(&trace), w.trace, "{}: trace drifted", w.name);
        assert!(!trace.epochs.is_empty(), "{}: empty trace", w.name);
        let report = parse_report(w.report).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(
            write_report(&report),
            w.report,
            "{}: report drifted",
            w.name
        );
        assert_eq!(
            report.epochs.len(),
            trace.epochs.len(),
            "{}: one report epoch per trace epoch",
            w.name
        );
    }
}

#[test]
fn corpus_reports_reproduced_by_both_analyzers() {
    for w in CORPUS {
        let snap = parse_snapshot(w.snapshot).expect("corpus snapshot parses");
        let trace = parse_trace(w.trace).expect("corpus trace parses");
        let mut session = ReplaySession::new(snap, ReplayMode::Both).expect("analyzers init");
        let mut differential = Report::default();
        let mut scratch = Report::default();
        for ep in &trace.epochs {
            let out = session.step(&ep.changes).expect("epoch applies");
            differential.epochs.push(EpochDiff::from_behavior(
                ep.label.clone(),
                out.differential.as_ref().unwrap(),
            ));
            scratch.epochs.push(EpochDiff::from_behavior(
                ep.label.clone(),
                out.scratch.as_ref().unwrap(),
            ));
        }
        assert_eq!(
            write_report(&differential),
            w.report,
            "{}: differential analyzer drifted from the corpus report",
            w.name
        );
        assert_eq!(
            write_report(&scratch),
            w.report,
            "{}: from-scratch analyzer drifted from the corpus report",
            w.name
        );
    }
}

#[test]
fn corpus_covers_the_headline_scenario_taxonomy() {
    // The corpus stays honest: failures AND recoveries, ACL edits,
    // policy (local-pref) churn and origination churn must all appear,
    // and at least one workload must produce visible flow diffs.
    let mut labels = std::collections::BTreeSet::new();
    let mut flow_diffs = 0usize;
    for w in CORPUS {
        let trace = parse_trace(w.trace).expect("parses");
        for ep in &trace.epochs {
            labels.extend(ep.label.clone());
        }
        let report = parse_report(w.report).expect("parses");
        flow_diffs += report.epochs.iter().map(|e| e.flows.len()).sum::<usize>();
    }
    for needed in [
        "link-failure",
        "link-recovery",
        "device-failure",
        "acl-insert",
        "local-pref-change",
        "prefix-withdraw",
        "ospf-cost-change",
    ] {
        assert!(labels.contains(needed), "corpus lost scenario {needed}");
    }
    assert!(
        flow_diffs > 50,
        "corpus reports should pin substantial flow churn, got {flow_diffs}"
    );
}
