//! Offline stand-in for the `criterion` benchmark framework.
//!
//! Keeps bench sources (`benches/experiments.rs`) compiling and runnable
//! with the upstream API shape — groups, `bench_with_input`,
//! `iter_batched`, `criterion_group!`/`criterion_main!` — but replaces the
//! statistical machinery with a plain timed loop that prints mean and min
//! wall-clock per iteration. Good enough to eyeball differential-vs-scratch
//! ratios; EXPERIMENTS.md-grade numbers will come from a real harness in a
//! later PR.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; accepted for API compatibility,
/// ignored by the stand-in (every iteration re-runs setup, untimed).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; the stand-in accepts and ignores
    /// them (filtering/baselines are not implemented).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        run_one(name, self.sample_size, &mut f);
    }
}

/// A set of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for compatibility; the stand-in's loop is bounded by
    /// sample count, not wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; no separate warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f`, labelling it with `id` and handing it `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `group_name/name`.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, &mut |b| f(b));
        self
    }

    /// Ends the group (upstream renders summary output here).
    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(1),
        total: Duration::ZERO,
        min: Duration::MAX,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {label:50} (no iterations)");
        return;
    }
    let mean = b.total / b.iters as u32;
    println!(
        "bench {label:50} mean {:>12?}  min {:>12?}  ({} iters)",
        mean, b.min, b.iters
    );
}

/// Hands the routine to the timing loop.
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iters: usize,
}

impl Bencher {
    fn record(&mut self, d: Duration) {
        self.total += d;
        self.min = self.min.min(d);
        self.iters += 1;
    }

    /// Times `routine` once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let t = Instant::now();
            let out = routine();
            self.record(t.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on fresh setup output each sample; setup is untimed.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            self.record(t.elapsed());
            drop(out);
        }
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
