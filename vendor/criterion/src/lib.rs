//! Offline stand-in for the `criterion` benchmark framework.
//!
//! Keeps bench sources (`benches/experiments.rs`) compiling and runnable
//! with the upstream API shape — groups, `bench_with_input`,
//! `iter_batched`, `criterion_group!`/`criterion_main!` — while replacing
//! the statistical machinery with a timed sampling loop plus a summary
//! pass over the recorded samples: mean, median, sample standard
//! deviation, p95 (nearest-rank) and min per iteration. Upstream's
//! bootstrap/outlier analysis is out of scope, but the reported spread
//! makes EXPERIMENTS.md-grade comparisons meaningful.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; accepted for API compatibility,
/// ignored by the stand-in (every iteration re-runs setup, untimed).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; the stand-in accepts and ignores
    /// them (filtering/baselines are not implemented).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        run_one(name, self.sample_size, &mut f);
    }
}

/// A set of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for compatibility; the stand-in's loop is bounded by
    /// sample count, not wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; no separate warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f`, labelling it with `id` and handing it `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `group_name/name`.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, &mut |b| f(b));
        self
    }

    /// Ends the group (upstream renders summary output here).
    pub fn finish(self) {}
}

/// Summary statistics over one benchmark's recorded samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (lower-middle for even sample counts).
    pub median: Duration,
    /// Sample standard deviation (n−1 denominator; zero for n = 1).
    pub std_dev: Duration,
    /// 95th percentile by the nearest-rank method.
    pub p95: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Number of samples.
    pub iters: usize,
}

/// Computes [`Stats`] over recorded samples. Returns `None` when empty.
pub fn stats(samples: &[Duration]) -> Option<Stats> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let n = sorted.len();
    let total: Duration = sorted.iter().sum();
    let mean = total / n as u32;
    let median = sorted[(n - 1) / 2];
    let p95 = sorted[((n * 95).div_ceil(100)).max(1) - 1];
    let std_dev = if n < 2 {
        Duration::ZERO
    } else {
        let mean_s = mean.as_secs_f64();
        let var = sorted
            .iter()
            .map(|d| {
                let dev = d.as_secs_f64() - mean_s;
                dev * dev
            })
            .sum::<f64>()
            / (n - 1) as f64;
        Duration::from_secs_f64(var.sqrt())
    };
    Some(Stats {
        mean,
        median,
        std_dev,
        p95,
        min: sorted[0],
        iters: n,
    })
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(1),
        durations: Vec::new(),
    };
    f(&mut b);
    let Some(s) = stats(&b.durations) else {
        println!("bench {label:50} (no iterations)");
        return;
    };
    println!(
        "bench {label:50} mean {:>11?}  median {:>11?}  sd {:>10?}  p95 {:>11?}  min {:>11?}  ({} iters)",
        s.mean, s.median, s.std_dev, s.p95, s.min, s.iters
    );
}

/// Hands the routine to the timing loop.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn record(&mut self, d: Duration) {
        self.durations.push(d);
    }

    /// Times `routine` once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let t = Instant::now();
            let out = routine();
            self.record(t.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on fresh setup output each sample; setup is untimed.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            self.record(t.elapsed());
            drop(out);
        }
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn stats_of_known_samples() {
        let s = stats(&[ms(10), ms(20), ms(30), ms(40), ms(100)]).unwrap();
        assert_eq!(s.mean, ms(40));
        assert_eq!(s.median, ms(30));
        assert_eq!(s.min, ms(10));
        assert_eq!(s.p95, ms(100));
        assert_eq!(s.iters, 5);
        // σ of {10,20,30,40,100} ms with n−1 denominator: √(5000/4) ≈ 35.36 ms.
        let sd_ms = s.std_dev.as_secs_f64() * 1e3;
        assert!((sd_ms - 35.355).abs() < 0.01, "sd = {sd_ms}");
    }

    #[test]
    fn stats_edge_cases() {
        assert!(stats(&[]).is_none());
        let one = stats(&[ms(7)]).unwrap();
        assert_eq!(one.mean, ms(7));
        assert_eq!(one.median, ms(7));
        assert_eq!(one.p95, ms(7));
        assert_eq!(one.std_dev, Duration::ZERO);
        // p95 over 100 equal-spaced samples is the 95th smallest.
        let hundred: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(stats(&hundred).unwrap().p95, ms(95));
    }

    #[test]
    fn bencher_records_every_sample() {
        let mut c = Criterion::default();
        // Just exercise the public loop; output goes to stdout.
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
