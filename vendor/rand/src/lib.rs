//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! Provides exactly what the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool}` over
//! integer ranges. The generator is SplitMix64 — *not* the upstream
//! ChaCha-based `StdRng` stream — which is fine here because every
//! consumer in this repository seeds explicitly and only needs
//! reproducibility against its own recorded baselines, not bit-for-bit
//! parity with upstream rand.

#![forbid(unsafe_code)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly (modulo negligible bias).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p` in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Sebastiano Vigna).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..256 {
            let v = r.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = r.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
