//! Offline stand-in for `serde_derive`.
//!
//! Emits `impl serde::Serialize` / `impl<'de> serde::Deserialize<'de>`
//! marker impls for the derived type. The input is scanned token-by-token
//! (no `syn`/`quote` available offline): outer attributes arrive as
//! distinct `#`+group token trees, so looking for the first top-level
//! `struct`/`enum` ident is unambiguous.
//!
//! Generic types fall back to emitting nothing — the marker traits have no
//! methods, so an absent impl only matters where a bound is required, and
//! no generic type in this workspace derives the serde traits today.

use proc_macro::{TokenStream, TokenTree};

/// Returns `(type_name, has_generics)` for the item being derived.
fn type_name(input: TokenStream) -> Option<(String, bool)> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    let generic = matches!(
                        iter.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return Some((name.to_string(), generic));
                }
                return None;
            }
        }
    }
    None
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some((name, false)) => format!("impl serde::Serialize for {name} {{}}")
            .parse()
            .unwrap(),
        _ => TokenStream::new(),
    }
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some((name, false)) => format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap(),
        _ => TokenStream::new(),
    }
}
