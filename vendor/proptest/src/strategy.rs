//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::sync::Arc;

/// A recipe for generating values of one type from a [`TestRng`].
///
/// Upstream proptest separates strategies from value trees (for
/// shrinking); this stand-in generates values directly — see the crate
/// docs for why shrinking is intentionally absent.
pub trait Strategy: Clone {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Debug,
        F: Fn(Self::Value) -> O + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds recursive structures: `recurse` receives a strategy for the
    /// substructure and returns the composite strategy. `depth` bounds
    /// nesting; `_desired_size`/`_expected_branch_size` are accepted for
    /// upstream signature compatibility but unused (no size-driven
    /// shrinking here).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut tier = base.clone();
        for _ in 0..depth {
            // Mixing the base back in at every tier keeps expected tree
            // sizes bounded even at full depth.
            let mixed = OneOf::new(vec![base.clone(), tier]).boxed();
            tier = recurse(mixed).boxed();
        }
        OneOf::new(vec![base, tier]).boxed()
    }

    /// Type-erases this strategy so heterogeneous strategies for one value
    /// type can be stored together (e.g. by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe mirror of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
pub struct OneOf<T>(Vec<BoxedStrategy<T>>);

impl<T> OneOf<T> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf(options)
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf(self.0.clone())
    }
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0);
    (S0.0, S1.1);
    (S0.0, S1.1, S2.2);
    (S0.0, S1.1, S2.2, S3.3);
    (S0.0, S1.1, S2.2, S3.3, S4.4);
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 42, 0)
    }

    #[test]
    fn ranges_and_tuples_compose() {
        let s = (0u32..4, 10i64..=12).prop_map(|(a, b)| (a, b));
        let mut r = rng();
        for _ in 0..64 {
            let (a, b) = s.generate(&mut r);
            assert!(a < 4);
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..64 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = Just(T::Leaf).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut r = rng();
        for _ in 0..128 {
            assert!(depth(&s.generate(&mut r)) <= 4);
        }
    }
}
