//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;

/// Length specification for [`vec()`]: an exact size or a half-open range,
/// mirroring upstream's `Into<SizeRange>` argument.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span > 1 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn lengths_respect_spec() {
        let mut rng = TestRng::for_case("collection::tests", 1, 0);
        let exact = vec(Just(0u8), 16);
        assert_eq!(exact.generate(&mut rng).len(), 16);
        let ranged = vec(Just(0u8), 1..24);
        for _ in 0..64 {
            let l = ranged.generate(&mut rng).len();
            assert!((1..24).contains(&l));
        }
    }
}
