//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy-combinator subset this workspace's property
//! tests use — ranges, tuples, `Just`, `prop_map`, `prop_recursive`,
//! `prop_oneof!`, `prop::collection::vec`, `prop::option::of`,
//! `any::<T>()` — plus the `proptest!` test-runner macro.
//!
//! Two deliberate departures from upstream, both CI-motivated:
//!
//! * **Determinism.** Cases are generated from a SplitMix64 stream seeded
//!   by `ProptestConfig::rng_seed` ⊕ hash(test path) ⊕ case index. The
//!   same binary always replays the same cases, so CI failures reproduce
//!   locally with zero ceremony and no `proptest-regressions/` files are
//!   ever emitted. Override the seed base with `PROPTEST_RNG_SEED=<u64>`
//!   to explore new cases.
//! * **No shrinking.** A failing case panics with its generated inputs
//!   (tests interpolate them via `prop_assert_*` messages); since the
//!   stream is deterministic, the failing case is already minimal enough
//!   to replay under a debugger.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Declares deterministic property tests.
///
/// Supports the upstream surface this repository uses: an optional
/// `#![proptest_config(..)]` header followed by `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; expands each test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(test_path, config.rng_seed, case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                $body
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}
