//! Deterministic case generation: config + the per-case RNG.

/// Runner configuration, set per-file via `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Base seed mixed into every case's RNG. Fixed default keeps CI
    /// deterministic; override at runtime with `PROPTEST_RNG_SEED`.
    pub rng_seed: u64,
}

/// Default base seed: arbitrary but pinned ("diff DNA" mnemonic).
pub const DEFAULT_RNG_SEED: u64 = 0xD1FF_DA7A_2022_0001;

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            rng_seed: DEFAULT_RNG_SEED,
        }
    }
}

impl ProptestConfig {
    /// Upstream-compatible constructor: default config with `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }

    /// Pins both the case count and the RNG seed (this workspace's
    /// preferred spelling in test files: explicit is better than default).
    pub fn with_cases_and_seed(cases: u32, rng_seed: u64) -> Self {
        ProptestConfig { cases, rng_seed }
    }
}

/// SplitMix64 stream seeded from (test path, base seed, case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for one test case. `PROPTEST_RNG_SEED` (a decimal
    /// u64) replaces the config's base seed when set, letting CI or a
    /// developer sweep fresh cases without editing sources.
    pub fn for_case(test_path: &str, base_seed: u64, case: u32) -> Self {
        let base = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(base_seed);
        // FNV-1a over the test path decorrelates same-index cases of
        // different properties.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: base ^ h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn per_case_streams_are_deterministic() {
        let mut a = TestRng::for_case("mod::prop", 1, 3);
        let mut b = TestRng::for_case("mod::prop", 1, 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_tests_decorrelate() {
        let mut a = TestRng::for_case("mod::prop_a", 1, 0);
        let mut b = TestRng::for_case("mod::prop_b", 1, 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
