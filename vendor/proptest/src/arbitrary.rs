//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value of `Self`.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Returns the canonical strategy for `A` (mirrors `proptest::arbitrary::any`).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
