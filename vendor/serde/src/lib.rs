//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact* API surface the repository uses: the `Serialize`
//! and `Deserialize` marker traits and their derive macros. No actual
//! serialization format ships with the stub; the model crates only derive
//! the traits so that downstream tooling (and later PRs that vendor a real
//! format) can rely on the impls existing.
//!
//! Swapping in real serde later is a manifest-only change: the trait and
//! derive paths (`serde::Serialize`, `#[derive(Serialize, Deserialize)]`)
//! are identical.

/// Marker for types that can be serialized.
///
/// The real trait's methods are intentionally omitted: nothing in the
/// workspace serializes yet, and the marker keeps `#[derive(Serialize)]`
/// attributes meaningful (the derive emits an `impl` of this trait).
pub trait Serialize {}

/// Marker for types that can be deserialized from a borrowed buffer.
///
/// Mirrors serde's lifetime parameter so generated impls
/// (`impl<'de> Deserialize<'de> for T`) keep the upstream shape.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
