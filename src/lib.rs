//! Workspace root for the Differential Network Analysis reproduction.
//!
//! This package only hosts the cross-crate integration tests (`tests/`) and
//! runnable examples (`examples/`). The library surface lives in the
//! workspace crates; the most convenient entry point is [`dna_core`].

pub use dna_core;
