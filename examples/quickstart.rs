//! Quickstart: build a 4-router OSPF WAN, fail a link, and print exactly
//! which flows changed behavior.
//!
//! Run with: `cargo run --example quickstart`

use dna_core::{report, DiffEngine};
use net_model::{Change, ChangeSet, NetBuilder};

fn main() {
    // A square: r1-r2-r3-r4-r1, with LANs on r1 and r3. The r1-r2 side is
    // cheap; the r1-r4 side expensive.
    let snap = NetBuilder::new()
        .router("r1")
        .iface("r1", "lan", "172.16.1.1/24")
        .iface("r1", "to2", "10.0.12.1/31")
        .iface("r1", "to4", "10.0.14.1/31")
        .router("r2")
        .iface("r2", "to1", "10.0.12.0/31")
        .iface("r2", "to3", "10.0.23.1/31")
        .router("r3")
        .iface("r3", "lan", "172.16.3.1/24")
        .iface("r3", "to2", "10.0.23.0/31")
        .iface("r3", "to4", "10.0.34.1/31")
        .router("r4")
        .iface("r4", "to1", "10.0.14.0/31")
        .iface("r4", "to3", "10.0.34.0/31")
        .link("r1", "to2", "r2", "to1")
        .link("r2", "to3", "r3", "to2")
        .link("r3", "to4", "r4", "to3")
        .link("r1", "to4", "r4", "to1")
        .ospf("r1", "to2", 1)
        .ospf("r1", "to4", 10)
        .ospf("r2", "to1", 1)
        .ospf("r2", "to3", 1)
        .ospf("r3", "to2", 1)
        .ospf("r3", "to4", 10)
        .ospf("r4", "to1", 10)
        .ospf("r4", "to3", 10)
        .ospf_passive("r1", "lan", 1)
        .ospf_passive("r3", "lan", 1)
        .build();

    println!("== building differential engine (simulates the base snapshot) ==");
    let mut engine = DiffEngine::new(snap.clone()).expect("valid snapshot");
    println!(
        "devices: {}, fib entries: {}, packet classes: {}\n",
        snap.device_count(),
        engine.fib().len(),
        engine.class_count()
    );

    println!("== change: fail the r2-r3 link ==");
    let link = snap
        .links
        .iter()
        .find(|l| l.touches("r2") && l.touches("r3"))
        .unwrap()
        .clone();
    let diff = engine
        .apply(&ChangeSet::single(Change::LinkDown(link.clone())))
        .expect("applies cleanly");
    print!("{}", report::render(&diff, 12));

    println!("\n== change: recover it ==");
    let diff = engine
        .apply(&ChangeSet::single(Change::LinkUp(link)))
        .expect("applies cleanly");
    print!("{}", report::render(&diff, 12));
}
