//! BGP traffic engineering: shift egress by editing an import route map's
//! local preference and watch exactly which flows reroute.
//!
//! Run with: `cargo run --example policy_change`

use dna_core::{classify, report, DiffEngine, FlowChangeKind};
use net_model::route::{RmAction, RmSet, RouteMapClause};
use net_model::{pfx, Change, ChangeSet, NetBuilder, RouteMap};

fn pref(lp: u32) -> RouteMap {
    let mut rm = RouteMap::default();
    rm.add(RouteMapClause {
        seq: 10,
        matches: vec![],
        action: RmAction::Permit,
        sets: vec![RmSet::LocalPref(lp)],
    });
    rm
}

fn main() {
    // r1 dual-homed to two providers (r2 in AS 65002, r3 in AS 65003),
    // both reaching the same destination AS 65004.
    let snap = NetBuilder::new()
        .router("r1")
        .iface("r1", "lan", "172.16.1.1/24")
        .iface("r1", "to2", "10.0.12.1/31")
        .iface("r1", "to3", "10.0.13.1/31")
        .bgp("r1", 65001, 1)
        .neighbor("r1", "10.0.12.0", 65002, Some("via2"), None)
        .neighbor("r1", "10.0.13.0", 65003, Some("via3"), None)
        .network("r1", pfx("172.16.1.0/24"))
        .route_map("r1", "via2", pref(200))
        .route_map("r1", "via3", pref(100))
        .router("r2")
        .iface("r2", "to1", "10.0.12.0/31")
        .iface("r2", "to4", "10.0.24.1/31")
        .bgp("r2", 65002, 2)
        .neighbor("r2", "10.0.12.1", 65001, None, None)
        .neighbor("r2", "10.0.24.0", 65004, None, None)
        .router("r3")
        .iface("r3", "to1", "10.0.13.0/31")
        .iface("r3", "to4", "10.0.34.1/31")
        .bgp("r3", 65003, 3)
        .neighbor("r3", "10.0.13.1", 65001, None, None)
        .neighbor("r3", "10.0.34.0", 65004, None, None)
        .router("r4")
        .iface("r4", "lan", "172.16.4.1/24")
        .iface("r4", "to2", "10.0.24.0/31")
        .iface("r4", "to3", "10.0.34.0/31")
        .bgp("r4", 65004, 4)
        .neighbor("r4", "10.0.24.1", 65002, None, None)
        .neighbor("r4", "10.0.34.1", 65003, None, None)
        .network("r4", pfx("172.16.4.0/24"))
        .link("r1", "to2", "r2", "to1")
        .link("r1", "to3", "r3", "to1")
        .link("r2", "to4", "r4", "to2")
        .link("r3", "to4", "r4", "to3")
        .build();

    let mut engine = DiffEngine::new(snap).expect("valid snapshot");
    let probe = net_model::Flow::tcp_to(net_model::ip("172.16.4.9"), 443);
    println!(
        "before: r1 reaches 172.16.4.0/24 via {:?}",
        engine.query("r1", &probe)
    );
    println!("(egress currently prefers r2: local-pref 200 beats 100)\n");

    println!("== maintenance: drain provider r2 by dropping its preference ==");
    let diff = engine
        .apply(&ChangeSet::single(Change::SetRouteMap {
            device: "r1".into(),
            name: "via2".into(),
            map: pref(50),
        }))
        .unwrap();
    print!("{}", report::render(&diff, 10));
    let rerouted = diff
        .flows
        .iter()
        .filter(|f| classify(f) == FlowChangeKind::Rerouted)
        .count();
    let lost = diff
        .flows
        .iter()
        .filter(|f| classify(f) == FlowChangeKind::Lost)
        .count();
    println!(
        "\nthe forwarding path moved (see the fib +1/-1 above: r1's egress \
         interface flipped to the r3 side),\nyet end-to-end outcomes are \
         unchanged — rerouted-endpoint classes: {rerouted}, lost: {lost}. \
         The drain is hitless."
    );
    println!(
        "after: r1 reaches 172.16.4.0/24 via {:?}",
        engine.query("r1", &probe)
    );
}
