//! Failure analysis in an eBGP fat-tree fabric: fail a core link and show
//! that traffic reroutes without loss (and how fast the differential
//! engine answers compared to re-simulating everything).
//!
//! Run with: `cargo run --release --example fattree_failure`

use dna_core::{classify, report, DiffEngine, FlowChangeKind, ScratchDiffer};
use net_model::{Change, ChangeSet};
use std::time::Instant;
use topo_gen::{fat_tree, Routing};

fn main() {
    let k = 6;
    let ft = fat_tree(k, Routing::Ebgp);
    println!(
        "k={k} fat-tree: {} switches, {} links, {} server subnets",
        ft.device_count(),
        ft.snapshot.links.len(),
        ft.server_subnets.len()
    );

    let t0 = Instant::now();
    let mut engine = DiffEngine::new(ft.snapshot.clone()).expect("valid fabric");
    println!(
        "initial differential simulation: {:?} ({} fib entries, {} classes)\n",
        t0.elapsed(),
        engine.fib().len(),
        engine.class_count()
    );

    // Fail an aggregation-core link.
    let link = ft
        .snapshot
        .links
        .iter()
        .find(|l| l.touches("core0"))
        .unwrap()
        .clone();
    println!("== failing {link} ==");
    let diff = engine
        .apply(&ChangeSet::single(Change::LinkDown(link.clone())))
        .unwrap();
    print!("{}", report::render(&diff, 8));

    let lost_at_fabric = diff
        .flows
        .iter()
        .filter(|f| !f.src.starts_with("core") && classify(f) == FlowChangeKind::Lost)
        .count();
    println!(
        "\nfabric redundancy check: {} edge/agg sources lost reachability (expect 0)",
        lost_at_fabric
    );

    // Compare against the from-scratch baseline on the same change.
    let mut scratch = ScratchDiffer::new(ft.snapshot.clone()).unwrap();
    let t1 = Instant::now();
    let sdiff = scratch
        .apply(&ChangeSet::single(Change::LinkDown(link)))
        .unwrap();
    println!(
        "\nfrom-scratch baseline took {:?} (vs differential {:?}) — {} fib deltas agree: {}",
        t1.elapsed(),
        diff.stats.total_time,
        sdiff.fib.len(),
        sdiff.fib == diff.fib
    );
}
