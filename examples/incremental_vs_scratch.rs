//! Head-to-head: the differential engine vs the from-scratch baseline on
//! the same change stream — asserting identical answers and printing the
//! per-change latency of both (the paper's headline comparison, live).
//!
//! Run with: `cargo run --release --example incremental_vs_scratch`

use dna_core::{DiffEngine, ScratchDiffer};
use std::time::Instant;
use topo_gen::{fat_tree, Routing, ScenarioGen, ALL_SCENARIOS};

fn main() {
    let ft = fat_tree(6, Routing::Ebgp);
    println!(
        "workload: k=6 eBGP fat-tree ({} switches), 10 random operational changes\n",
        ft.device_count()
    );

    let t = Instant::now();
    let mut eng = DiffEngine::new(ft.snapshot.clone()).unwrap();
    println!(
        "differential engine warm-up (initial simulation): {:?}",
        t.elapsed()
    );
    let mut scratch = ScratchDiffer::new(ft.snapshot.clone()).unwrap();

    let mut gen = ScenarioGen::new(2024);
    let changes = gen.sequence(&ft.snapshot, ALL_SCENARIOS, 10);

    println!(
        "\n{:<44} {:>12} {:>12} {:>8}",
        "change", "differential", "scratch", "speedup"
    );
    let (mut sum_inc, mut sum_scr) = (0f64, 0f64);
    for cs in &changes {
        let label = cs
            .changes
            .first()
            .map(|c| c.to_string())
            .unwrap_or_default();
        let t0 = Instant::now();
        let d1 = eng.apply(cs).expect("incremental apply");
        let inc = t0.elapsed();
        let t1 = Instant::now();
        let d2 = scratch.apply(cs).expect("scratch apply");
        let scr = t1.elapsed();
        assert_eq!(d1.fib, d2.fib, "the two analyzers must agree");
        assert_eq!(d1.rib, d2.rib);
        sum_inc += inc.as_secs_f64();
        sum_scr += scr.as_secs_f64();
        println!(
            "{:<44} {:>12} {:>12} {:>7.1}x",
            label.chars().take(44).collect::<String>(),
            format!("{inc:?}"),
            format!("{scr:?}"),
            scr.as_secs_f64() / inc.as_secs_f64().max(1e-9)
        );
    }
    println!(
        "\ntotals: differential {:.1} ms vs scratch {:.1} ms — {:.1}x overall ({} changes, identical results)",
        sum_inc * 1e3,
        sum_scr * 1e3,
        sum_scr / sum_inc.max(1e-9),
        changes.len()
    );
}
