//! ACL audit: insert a firewall rule and get the *exact* header space it
//! cuts off, as packet-class descriptions — the differential answer to
//! "what will this ACL actually block?"
//!
//! Run with: `cargo run --example acl_audit`

use dna_core::{report, DiffEngine};
use net_model::acl::{AclEntry, Action, FlowMatch, PortRange};
use net_model::{Change, ChangeSet};
use topo_gen::{fat_tree, Routing};

fn main() {
    let ft = fat_tree(4, Routing::Ospf);
    let mut engine = DiffEngine::new(ft.snapshot.clone()).unwrap();
    println!(
        "fabric up: {} devices, {} packet classes\n",
        ft.device_count(),
        engine.class_count()
    );

    // Block TCP/445 and an entire subnet at an aggregation switch ingress.
    let target = ft.server_subnets[3].1;
    println!("== installing ACL at agg0_0[down0] (ingress): deny tcp/445, deny {target} ==");
    let cs = ChangeSet::of(vec![
        Change::AclEntryAdd {
            device: "agg0_0".into(),
            acl: "edge-filter".into(),
            entry: AclEntry {
                seq: 10,
                action: Action::Deny,
                matches: FlowMatch {
                    proto: Some(6),
                    dst_ports: Some(PortRange::exactly(445)),
                    ..FlowMatch::any()
                },
            },
        },
        Change::AclEntryAdd {
            device: "agg0_0".into(),
            acl: "edge-filter".into(),
            entry: AclEntry {
                seq: 20,
                action: Action::Deny,
                matches: FlowMatch::dst(target),
            },
        },
        Change::AclEntryAdd {
            device: "agg0_0".into(),
            acl: "edge-filter".into(),
            entry: AclEntry {
                seq: 30,
                action: Action::Permit,
                matches: FlowMatch::any(),
            },
        },
        Change::SetAclIn {
            device: "agg0_0".into(),
            iface: "down0".into(),
            acl: Some("edge-filter".into()),
        },
    ]);
    let diff = engine.apply(&cs).unwrap();
    print!("{}", report::render(&diff, 16));

    println!("\n== affected header spaces, per packet class ==");
    let mut seen = std::collections::BTreeSet::new();
    for f in &diff.flows {
        if seen.insert(f.headers.clone()) {
            for line in &f.headers {
                println!("  blocked: {line}");
            }
        }
    }
    println!(
        "\nnote: only traffic entering agg0_0 from edge0_0 is affected — \
         {} classes changed out of {} total",
        seen.len(),
        engine.class_count()
    );

    // Verify a concrete victim and a concrete survivor.
    let victim = net_model::Flow::tcp_to(target.nth_host(7), 80);
    let survivor = net_model::Flow::tcp_to(ft.server_subnets[0].1.nth_host(7), 80);
    println!(
        "\nprobe {victim:?} from edge0_0 -> {:?}",
        engine.query("edge0_0", &victim)
    );
    println!(
        "probe {survivor:?} from edge0_0 -> {:?}",
        engine.query("edge0_0", &survivor)
    );
    let smb = net_model::Flow {
        dst_port: 445,
        ..survivor
    };
    println!(
        "probe {smb:?} from edge0_0 -> {:?}",
        engine.query("edge0_0", &smb)
    );
}
