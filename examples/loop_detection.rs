//! Misconfiguration forensics: two static routes that look individually
//! reasonable combine into a forwarding loop. The differential engine
//! flags the loop the instant the second route lands — with the exact
//! header space caught in it.
//!
//! Run with: `cargo run --example loop_detection`

use dna_core::{classify, report, DiffEngine, FlowChangeKind};
use net_model::{ip, pfx, Change, ChangeSet, NetBuilder, NextHop, StaticRoute};

fn main() {
    // a — b — c, with a default route chain toward c's upstream LAN.
    let snap = NetBuilder::new()
        .router("a")
        .iface("a", "lan", "172.16.0.1/24")
        .iface("a", "p1", "10.0.0.1/31")
        .router("b")
        .iface("b", "p1", "10.0.0.0/31")
        .iface("b", "p2", "10.0.1.1/31")
        .router("c")
        .iface("c", "p2", "10.0.1.0/31")
        .iface("c", "lan", "172.16.2.1/24")
        .link("a", "p1", "b", "p1")
        .link("b", "p2", "c", "p2")
        .static_route("a", pfx("0.0.0.0/0"), "10.0.0.0") // a -> b
        .build();

    let mut engine = DiffEngine::new(snap).expect("valid snapshot");
    println!("baseline: a default-routes to b; b has no route onward\n");
    let probe = net_model::Flow::tcp_to(ip("8.8.8.8"), 443);
    println!("probe 8.8.8.8 from a -> {:?}\n", engine.query("a", &probe));

    // Ticket #1: "b can't reach the internet" — someone points b's default
    // back at a (the wrong side!).
    println!("== change: operator adds default route on b via 10.0.0.1 (a's address) ==");
    let diff = engine
        .apply(&ChangeSet::single(Change::StaticRouteAdd {
            device: "b".into(),
            route: StaticRoute {
                prefix: pfx("0.0.0.0/0"),
                next_hop: NextHop::Ip(ip("10.0.0.1")),
                admin_distance: 1,
            },
        }))
        .unwrap();
    print!("{}", report::render(&diff, 10));
    let loops = diff
        .flows
        .iter()
        .filter(|f| classify(f) == FlowChangeKind::LoopIntroduced)
        .count();
    println!("\n*** {loops} flow classes entered a forwarding loop ***");
    for f in diff
        .flows
        .iter()
        .filter(|f| classify(f) == FlowChangeKind::LoopIntroduced)
        .take(3)
    {
        println!(
            "    from {}: {} (example dst {})",
            f.src,
            f.headers.first().cloned().unwrap_or_default(),
            f.example.dst
        );
    }

    // The fix: point b at c instead.
    println!("\n== fix: replace with default via 10.0.1.0 (c) ==");
    let diff = engine
        .apply(&ChangeSet::of(vec![
            Change::StaticRouteRemove {
                device: "b".into(),
                prefix: pfx("0.0.0.0/0"),
                next_hop: NextHop::Ip(ip("10.0.0.1")),
            },
            Change::StaticRouteAdd {
                device: "b".into(),
                route: StaticRoute {
                    prefix: pfx("0.0.0.0/0"),
                    next_hop: NextHop::Ip(ip("10.0.1.0")),
                    admin_distance: 1,
                },
            },
        ]))
        .unwrap();
    print!("{}", report::render(&diff, 10));
    let resolved = diff
        .flows
        .iter()
        .filter(|f| classify(f) == FlowChangeKind::LoopResolved)
        .count();
    println!("\nloops resolved: {resolved}");
    println!("probe 8.8.8.8 from a -> {:?}", engine.query("a", &probe));
}
